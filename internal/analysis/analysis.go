// Package analysis is a dependency-free miniature of golang.org/x/tools'
// go/analysis: just enough framework to write repo-specific static
// checkers over the toolkit's own source tree using only the standard
// library's go/ast, go/parser and go/token.
//
// The paper's thesis — declare a constraint once, enforce it
// mechanically everywhere — applies to this codebase's own invariants:
// the lock order DESIGN.md §9 documents, the vclock-only rule the
// deterministic experiments rely on, the metric-catalogue contract
// OBSERVABILITY.md makes with operators.  Each analyzer in the
// subpackages encodes one such invariant; `cmd/cmlint` runs them all
// and CI fails on any diagnostic, so a violation is a compile-time
// error rather than a probabilistic `-race` catch.  DESIGN.md §11
// documents the suite.
//
// Suppression: a finding on line N is suppressed by a comment
//
//	//cmlint:allow <analyzer>(<reason>)
//
// on line N or line N-1.  The reason is mandatory — a bare allow is
// itself reported — so every exception carries its justification in
// the source.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name is the analyzer's identity: the diagnostic prefix and the
	// token named in //cmlint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Collect, when non-nil, runs over every loaded package before any
	// Run call and returns package-local facts (annotation tables,
	// declared ranks).  The merged facts from all packages are handed to
	// every Run via Pass.Facts, so cross-package knowledge — "AppendUnit
	// acquires the trace commit mutex" — is available when checking a
	// caller in another package.
	Collect func(p *Pass) any
	// Run checks one package and reports diagnostics via p.Reportf.
	Run func(p *Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Facts holds every non-nil value the analyzer's Collect phase
	// returned, one entry per package, in load order.
	Facts []any
	// ModRoot is the directory containing go.mod — the anchor for
	// repo-level resources such as OBSERVABILITY.md.
	ModRoot string

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf files a diagnostic at pos unless an allow comment suppresses
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowRe matches one suppression: cmlint:allow name(reason).  The
// reason may not contain a close paren; nested parens in justifications
// have not earned their complexity.
var allowRe = regexp.MustCompile(`cmlint:allow\s+([a-z]+)\(([^)]*)\)`)

// bareAllowRe catches a suppression that forgot its mandatory reason.
var bareAllowRe = regexp.MustCompile(`cmlint:allow\s+([a-z]+)(?:\s|$|[^(a-z])`)

// allowSite is one parsed //cmlint:allow comment.
type allowSite struct {
	analyzer string
	reason   string
	file     string
	line     int
}

// collectAllows parses every comment in the package for suppression
// directives, returning the usable sites and the malformed (reasonless)
// ones.
func collectAllows(fset *token.FileSet, files []*ast.File) (sites []allowSite, malformed []Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// A directive starts its comment (gofmt keeps //cmlint:...
				// unspaced); prose that merely mentions cmlint:allow — like
				// this package's own documentation — is not a directive.
				if !strings.HasPrefix(c.Text, "//cmlint:allow") &&
					!strings.HasPrefix(c.Text, "/*cmlint:allow") {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := allowRe.FindAllStringSubmatch(c.Text, -1)
				for _, m := range ms {
					if strings.TrimSpace(m[2]) == "" {
						malformed = append(malformed, Diagnostic{
							Analyzer: "allow",
							Pos:      pos,
							Message:  fmt.Sprintf("cmlint:allow %s() has an empty reason; every suppression must say why", m[1]),
						})
						continue
					}
					sites = append(sites, allowSite{analyzer: m[1], reason: m[2], file: pos.Filename, line: pos.Line})
				}
				if len(ms) == 0 && bareAllowRe.MatchString(c.Text) {
					m := bareAllowRe.FindStringSubmatch(c.Text)
					malformed = append(malformed, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  fmt.Sprintf("cmlint:allow %s is missing its (reason); write cmlint:allow %s(why this is safe)", m[1], m[1]),
					})
				}
			}
		}
	}
	return sites, malformed
}

// allowed reports whether a diagnostic from analyzer at pos is
// suppressed by an allow on the same line or the line above.
func (p *Package) allowed(analyzer string, pos token.Position) bool {
	for _, a := range p.allows {
		if a.analyzer == analyzer && a.file == pos.Filename &&
			(a.line == pos.Line || a.line == pos.Line-1) {
			return true
		}
	}
	return false
}

// Run drives analyzers over packages: every Collect first (facts are
// global), then every (analyzer, package) Run.  Diagnostics come back
// sorted by position for stable output, with malformed allow comments
// included.
func Run(pkgs []*Package, analyzers []*Analyzer, modRoot string) ([]Diagnostic, error) {
	var diags []Diagnostic
	seenMalformed := map[string]bool{}
	for _, pkg := range pkgs {
		for _, d := range pkg.malformed {
			key := d.String()
			if !seenMalformed[key] {
				seenMalformed[key] = true
				diags = append(diags, d)
			}
		}
	}
	for _, a := range analyzers {
		var facts []any
		if a.Collect != nil {
			for _, pkg := range pkgs {
				p := &Pass{Analyzer: a, Pkg: pkg, ModRoot: modRoot, diags: &diags}
				if f := a.Collect(p); f != nil {
					facts = append(facts, f)
				}
			}
		}
		for _, pkg := range pkgs {
			p := &Pass{Analyzer: a, Pkg: pkg, Facts: facts, ModRoot: modRoot, diags: &diags}
			if err := a.Run(p); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ImportName returns the local name file binds the given import path to
// ("" when the file does not import it).  The default name is the last
// path segment, which is right for every stdlib package we care about.
func ImportName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// SelectorPath renders a selector chain rooted at an identifier
// ("p.parts[i].dataMu" → "p.parts.dataMu", "s.mu" → "s.mu").  Index
// expressions are collapsed and anything not reducible to an
// identifier-rooted chain returns "".
func SelectorPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := SelectorPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.IndexExpr:
		return SelectorPath(x.X)
	case *ast.ParenExpr:
		return SelectorPath(x.X)
	case *ast.StarExpr:
		return SelectorPath(x.X)
	case *ast.CallExpr:
		return ""
	}
	return ""
}
