// Package loading: parse directories of Go source into Packages without
// type information.  The analyzers are syntactic by design — they match
// the conventions this repository actually uses (documented field names,
// annotated declarations) rather than resolved types, which keeps the
// whole suite free of golang.org/x/tools.
package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed directory of Go files.
type Package struct {
	// Name is the package clause name ("shell", "main").
	Name string
	// Path is the slash-separated import path relative to the module
	// root ("cmtk/internal/shell"), or the directory path when no module
	// root is known.
	Path string
	// Dir is the absolute directory.
	Dir  string
	Fset *token.FileSet
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File

	allows    []allowSite
	malformed []Diagnostic
}

// LoadOptions controls package loading.
type LoadOptions struct {
	// IncludeTests loads _test.go files too.  cmlint leaves them out:
	// tests measure wall time and spawn scoped goroutines legitimately,
	// and the invariants under enforcement are production-path ones.
	IncludeTests bool
}

// LoadDir parses one directory into a Package.  modRoot and modPath
// anchor the import path; pass "" for both to fall back to the
// directory path.  Directories with no Go files return (nil, nil).
func LoadDir(dir string, modRoot, modPath string, opts LoadOptions) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") {
			continue
		}
		if !opts.IncludeTests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: abs, Fset: token.NewFileSet()}
	for _, n := range names {
		f, err := parser.ParseFile(pkg.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", filepath.Join(dir, n), err)
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		if f.Name.Name != pkg.Name {
			// A second package in the same directory (external test
			// packages are already filtered); skip rather than refuse.
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Path = abs
	if modRoot != "" {
		if rel, err := filepath.Rel(modRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
			pkg.Path = modPath
			if rel != "." {
				pkg.Path = modPath + "/" + filepath.ToSlash(rel)
			}
		}
	}
	pkg.allows, pkg.malformed = collectAllows(pkg.Fset, pkg.Files)
	return pkg, nil
}

// LoadTree loads every package under root, skipping testdata, hidden
// directories, and vendor.
func LoadTree(root string, opts LoadOptions) ([]*Package, error) {
	modRoot, modPath, err := FindModule(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return fs.SkipDir
		}
		pkg, err := LoadDir(path, modRoot, modPath, opts)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

// FindModule walks up from dir to the enclosing go.mod, returning the
// module root directory and module path.  Without one it returns dir
// itself and an empty module path.
func FindModule(dir string) (modRoot, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return d, "", nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return abs, "", nil
		}
		d = parent
	}
}
