// Package trace (clean fixture): deterministic code that uses time
// types, injected clocks, seeded randomness, and one justified
// suppression — none of it may be flagged.
package trace

import (
	"math/rand"
	"time"
)

// Clock is the injected time source; reading it is always legal.
type Clock interface {
	Now() time.Time
}

// elapsed computes with time.Time/Duration values without touching the
// ambient clock.
func elapsed(c Clock, since time.Time) time.Duration {
	return c.Now().Sub(since)
}

// seeded uses a deterministic source; the constructors are not global
// rand.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// bridge is the sanctioned exception, carrying its justification.
func bridge() time.Time {
	//cmlint:allow wallclock(fixture: this is the one bridge to the system clock)
	return time.Now()
}
