// Package harness is not in the deterministic set: wall-clock reads
// are how experiment wall time is measured, and none may be flagged.
package harness

import "time"

func wallTime(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
