// Package trace seeds wallclock violations inside a deterministic
// package: ambient clock reads, timers, and global math/rand.
package trace

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now() // want `wall-clock read time.Now in deterministic package trace`
}

func age(t time.Time) time.Duration {
	return time.Since(t) // want `wall-clock read time.Since in deterministic package trace`
}

func pause() {
	time.Sleep(time.Millisecond) // want `wall-clock read time.Sleep in deterministic package trace`
}

func timer(f func()) *time.Timer {
	return time.AfterFunc(time.Second, f) // want `wall-clock read time.AfterFunc in deterministic package trace`
}

func jitter() float64 {
	return rand.Float64() // want `global math/rand use rand.Float64 in deterministic package trace`
}

func pick(n int) int {
	return rand.Intn(n) // want `global math/rand use rand.Intn in deterministic package trace`
}
