package wallclock_test

import (
	"testing"

	"cmtk/internal/analysis/analysistest"
	"cmtk/internal/analysis/wallclock"
)

func TestWallclockFlagsSeededViolations(t *testing.T) {
	analysistest.Run(t, ".", wallclock.Analyzer, "flagged")
}

func TestWallclockAcceptsInjectedClockAndSuppressions(t *testing.T) {
	analysistest.Run(t, ".", wallclock.Analyzer, "clean")
}

func TestWallclockIgnoresNonDeterministicPackages(t *testing.T) {
	analysistest.Run(t, ".", wallclock.Analyzer, "exempt")
}
