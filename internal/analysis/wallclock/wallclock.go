// Package wallclock forbids ambient time and randomness in the packages
// whose determinism the experiments rely on.  E15's exact-equality
// assertions, the serial-vs-parallel equivalence test and the
// static-vs-sharded fleet test all depend on shell, trace, chaos,
// vclock, fleet and guarantee reading time only through an injected
// vclock.Clock and randomness only through seeded rand.New sources; a
// stray time.Now or global math/rand call silently converts an exact
// experiment into a flaky one.
//
// Flagged in deterministic packages: time.Now, time.Since, time.Until,
// time.After, time.AfterFunc, time.Tick, time.NewTimer, time.NewTicker,
// time.Sleep, and any package-level math/rand function (the seeded
// constructors rand.New, rand.NewSource, rand.NewZipf stay legal).
// Legitimate exceptions — vclock.Real is *the* bridge to the system
// clock — carry //cmlint:allow wallclock(reason).
package wallclock

import (
	"go/ast"

	"cmtk/internal/analysis"
)

// Analyzer is the wallclock checker.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "deterministic packages must read time via vclock.Clock and randomness via seeded sources, never ambient time.Now/math/rand",
	Run:  run,
}

// Deterministic names the packages under enforcement.  Matching is by
// package name: these are the toolkit layers the experiments drive on a
// virtual clock.
var Deterministic = map[string]bool{
	"shell":     true,
	"trace":     true,
	"chaos":     true,
	"vclock":    true,
	"fleet":     true,
	"guarantee": true,
}

// bannedTime lists package time functions that read or wait on the
// ambient clock.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"Sleep": true,
}

// allowedRand lists the identifiers in math/rand that do not touch the
// global (unseeded, process-wide) source: constructors and types.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
}

func run(p *analysis.Pass) error {
	if !Deterministic[p.Pkg.Name] {
		return nil
	}
	for _, file := range p.Pkg.Files {
		timeName := analysis.ImportName(file, "time")
		randName := analysis.ImportName(file, "math/rand")
		if randName == "" {
			randName = analysis.ImportName(file, "math/rand/v2")
		}
		if timeName == "" && randName == "" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			root, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case timeName != "" && root.Name == timeName && bannedTime[sel.Sel.Name]:
				p.Reportf(sel.Pos(), "wall-clock read %s.%s in deterministic package %s; inject a vclock.Clock instead (DESIGN.md §11)",
					timeName, sel.Sel.Name, p.Pkg.Name)
			case randName != "" && root.Name == randName && !allowedRand[sel.Sel.Name]:
				p.Reportf(sel.Pos(), "global math/rand use %s.%s in deterministic package %s; use a seeded rand.New(rand.NewSource(seed)) instead",
					randName, sel.Sel.Name, p.Pkg.Name)
			}
			return true
		})
	}
	return nil
}
