// Package leakcheck is a dependency-free goroutine-leak guard for test
// suites.  It is the dynamic complement to the static goroleak analyzer:
// goroleak proves every `go` statement is *visibly* tied to a shutdown
// path; leakcheck proves the ties actually fire, by snapshotting the
// goroutines alive before a suite runs and failing the binary if any new
// ones outlive it.
//
// Usage — one TestMain per guarded package:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// Main records a baseline before m.Run, then polls for up to five
// seconds afterwards for the goroutine set to return to that baseline.
// The grace period absorbs benign teardown races (a Close that returns
// before its drain goroutine observes the done channel).  Goroutines
// owned by the runtime and the testing harness are ignored, as are any
// that were already alive at baseline — leakcheck only blames the suite
// for goroutines the suite itself created and failed to stop.
//
// leakcheck deliberately reads the real clock: it measures the test
// binary, not simulated time, so it lives outside the packages the
// wallclock analyzer patrols.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// gracePeriod is how long Main waits for straggler goroutines to exit
// after the suite completes before declaring them leaked.
const gracePeriod = 5 * time.Second

// pollEvery is the re-snapshot interval during the grace period.
const pollEvery = 20 * time.Millisecond

// Main wraps m.Run with a goroutine-leak check and exits the binary.
// On a passing suite it exits non-zero if goroutines created during the
// run are still alive after the grace period; a failing suite reports
// its own failure and the leak check is skipped (leaks are expected
// when tests abort mid-flight).
func Main(m *testing.M) {
	baseline := snapshot()
	code := m.Run()
	if code == 0 {
		if leaked := waitForBaseline(baseline, gracePeriod); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr,
				"leakcheck: %d goroutine(s) created by the suite outlived it:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// Check fails t if goroutines not alive at call time remain after fn
// returns and the grace period drains.  It is the per-test variant of
// Main for pinpointing which test leaks.
func Check(t *testing.T, fn func()) {
	t.Helper()
	baseline := snapshot()
	fn()
	if leaked := waitForBaseline(baseline, gracePeriod); len(leaked) > 0 {
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	}
}

// waitForBaseline polls until every non-baseline goroutine has exited
// or the deadline passes, returning the stacks of the stragglers.
func waitForBaseline(baseline map[string]bool, within time.Duration) []string {
	deadline := time.Now().Add(within)
	for {
		var leaked []string
		for id, stack := range snapshotStacks() {
			if !baseline[id] {
				leaked = append(leaked, stack)
			}
		}
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(pollEvery)
	}
}

// snapshot returns the ids of all currently interesting goroutines.
func snapshot() map[string]bool {
	ids := make(map[string]bool)
	for id := range snapshotStacks() {
		ids[id] = true
	}
	return ids
}

// snapshotStacks captures all goroutine stacks and returns the
// interesting ones keyed by goroutine id.
func snapshotStacks() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	stacks := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		id, ok := goroutineID(g)
		if !ok || boring(g) {
			continue
		}
		stacks[id] = g
	}
	return stacks
}

// goroutineID extracts the numeric id from a "goroutine N [state]:" header.
func goroutineID(stack string) (string, bool) {
	if !strings.HasPrefix(stack, "goroutine ") {
		return "", false
	}
	rest := stack[len("goroutine "):]
	sp := strings.IndexByte(rest, ' ')
	if sp <= 0 {
		return "", false
	}
	return rest[:sp], true
}

// boringFrames are substrings identifying goroutines owned by the
// runtime or the testing harness — never the fault of the suite.
var boringFrames = []string{
	"testing.Main(",
	"testing.(*M).",
	"testing.tRunner(",
	"testing.runTests(",
	"testing.runFuzzing(",
	"runtime.goexit",
	"runtime.gc",
	"runtime.MHeap",
	"runtime/trace.Start",
	"os/signal.signal_recv",
	"os/signal.loop",
	"leakcheck.snapshotStacks",
}

func boring(stack string) bool {
	lines := strings.Split(stack, "\n")
	if len(lines) < 2 {
		return true // header only: goroutine in transition, ignore
	}
	for _, frame := range boringFrames {
		if strings.Contains(stack, frame) {
			return true
		}
	}
	return false
}
