package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestHarnessGoroutinesAreBoring(t *testing.T) {
	// The running test goroutine sits on testing.tRunner and must be
	// ignored; a goroutine the test creates must be visible.
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-block
	}()
	var harness, mine int
	for _, s := range snapshotStacks() {
		if strings.Contains(s, "TestHarnessGoroutinesAreBoring.func") {
			mine++
		} else if strings.Contains(s, "TestHarnessGoroutinesAreBoring") {
			harness++
		}
	}
	close(block)
	<-done
	if harness != 0 || mine != 1 {
		t.Fatalf("snapshot saw %d harness goroutines (want 0) and %d created goroutines (want 1)", harness, mine)
	}
}

func TestWaitCatchesALeakedGoroutine(t *testing.T) {
	baseline := snapshot()
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-block
	}()
	leaked := waitForBaseline(baseline, 50*time.Millisecond)
	if len(leaked) != 1 || !strings.Contains(leaked[0], "TestWaitCatchesALeakedGoroutine") {
		t.Fatalf("got %d leaked stacks (%v), want the blocked goroutine", len(leaked), leaked)
	}
	close(block)
	<-done
}

func TestWaitAbsorbsSlowShutdown(t *testing.T) {
	baseline := snapshot()
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(80 * time.Millisecond) // exits inside the grace window
	}()
	if leaked := waitForBaseline(baseline, 2*time.Second); len(leaked) != 0 {
		t.Fatalf("slow-but-terminating goroutine reported as leaked: %v", leaked)
	}
	<-done
}

func TestGoroutineID(t *testing.T) {
	id, ok := goroutineID("goroutine 42 [running]:\nmain.main()")
	if !ok || id != "42" {
		t.Fatalf("goroutineID = %q, %v; want 42, true", id, ok)
	}
	if _, ok := goroutineID("not a header"); ok {
		t.Fatal("goroutineID accepted garbage")
	}
}
