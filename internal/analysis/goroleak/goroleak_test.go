package goroleak_test

import (
	"testing"

	"cmtk/internal/analysis/analysistest"
	"cmtk/internal/analysis/goroleak"
)

func TestGoroleakFlagsSeededViolations(t *testing.T) {
	analysistest.Run(t, ".", goroleak.Analyzer, "flagged")
}

func TestGoroleakAcceptsTiedAndSuppressed(t *testing.T) {
	analysistest.Run(t, ".", goroleak.Analyzer, "clean")
}
