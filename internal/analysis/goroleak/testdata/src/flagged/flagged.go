// Package flagged seeds goroleak violations: goroutines with no
// visible shutdown tie.
package flagged

type server struct {
	q chan int
}

// pump loops forever with no done signal, waitgroup, or context.
func (s *server) pump() {
	for v := range s.q {
		_ = v
	}
}

func (s *server) start() {
	go s.pump() // want `goroutine is not visibly tied to a shutdown path`
}

func fireAndForget(f func()) {
	go func() { // want `goroutine is not visibly tied to a shutdown path`
		for {
			f()
		}
	}()
}

type external struct{}

func (external) Serve() {}

// unresolvable launches a method the analyzer cannot inspect; without
// an annotation it must be flagged.
func unresolvable() {
	var e external
	go e.Serve() // want `goroutine is not visibly tied to a shutdown path`
}
