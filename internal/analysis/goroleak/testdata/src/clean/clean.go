// Package clean starts goroutines the sanctioned ways: WaitGroup
// registration, done-channel ties, closed-flag checks, and one
// justified suppression.  Nothing may be flagged.
package clean

import "sync"

type worker struct {
	wg     sync.WaitGroup
	done   chan struct{}
	mu     sync.Mutex
	closed bool
}

// startTracked registers on the WaitGroup before launching; Close waits.
func (w *worker) startTracked() {
	w.wg.Add(1)
	go w.loop()
}

func (w *worker) loop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.done:
			return
		}
	}
}

// startSignalled launches a literal that selects on the done channel.
func (w *worker) startSignalled() {
	go func() {
		for {
			select {
			case <-w.done:
				return
			}
		}
	}()
}

// startFlagged launches a same-package method that polls the closed
// flag under the mutex.
func (w *worker) startFlagged() {
	go w.drain()
}

func (w *worker) drain() {
	for {
		w.mu.Lock()
		stop := w.closed
		w.mu.Unlock()
		if stop {
			return
		}
	}
}

type opaque struct{}

func (opaque) Run() {}

// startSuppressed launches an uninspectable body with a justification.
func startSuppressed() {
	var o opaque
	//cmlint:allow goroleak(fixture: the caller stops this via the returned handle's Close)
	go o.Run()
}
