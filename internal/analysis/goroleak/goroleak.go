// Package goroleak requires every goroutine started in a library
// package to be visibly tied to a shutdown path.  The toolkit's
// concurrency model (DESIGN.md §9) ends every component's life with
// Drain/Close/Stop; a goroutine those paths cannot reach is a leak that
// accumulates under the chaos soak and poisons goroutine-count
// baselines in tests.
//
// A `go` statement passes when the launched body — a function literal,
// or a same-package function or method resolved by name — contains a
// recognizable shutdown tie:
//
//   - a WaitGroup Done (usually deferred), which a Close/Drain Waits on,
//   - a receive, select or predicate on a done/closed/quit/stop signal
//     (t.done channel, t.closed flag, ctx.Done()),
//
// or when the launching function registers the goroutine on a
// WaitGroup (x.wg.Add before the go statement).  A goroutine whose body
// cannot be resolved (a method from another package, like
// http.Server.Serve) must carry //cmlint:allow goroleak(reason) naming
// who stops it.  Package main is exempt: its goroutines share the
// process's lifetime by construction.
package goroleak

import (
	"go/ast"
	"regexp"
	"strings"

	"cmtk/internal/analysis"
)

// Analyzer is the goroleak checker.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "library goroutines must be tied to a shutdown path (WaitGroup, done/closed signal, or context)",
	Run:  run,
}

// signalName matches identifiers that by convention carry a shutdown
// signal.
var signalName = regexp.MustCompile(`(?i)^(done|closed|closing|quit|stop|stopped|shutdown|ctx|cancel)$`)

// wgName matches WaitGroup-ish identifiers for the Add-before-go
// heuristic.
var wgName = regexp.MustCompile(`(?i)(wg|waitgroup|ready)$`)

func run(p *analysis.Pass) error {
	if p.Pkg.Name == "main" {
		return nil
	}
	// Index this package's function and method bodies by name for
	// resolving `go x.f()`.
	decls := map[string][]*ast.FuncDecl{}
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls[fd.Name.Name] = append(decls[fd.Name.Name], fd)
			}
		}
	}
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if checkGo(fd, g, decls) {
					return true
				}
				p.Reportf(g.Pos(), "goroutine is not visibly tied to a shutdown path (no WaitGroup Done, done/closed signal, or context in its body); tie it to Close/Drain/Stop or annotate //cmlint:allow goroleak(who stops it)")
				return true
			})
		}
	}
	return nil
}

// checkGo reports whether the go statement passes any heuristic.
func checkGo(enclosing *ast.FuncDecl, g *ast.GoStmt, decls map[string][]*ast.FuncDecl) bool {
	// Heuristic 1: the launching function puts the goroutine on a
	// WaitGroup before starting it.
	addBefore := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= g.Pos() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
			path := analysis.SelectorPath(sel.X)
			if wgName.MatchString(lastComponent(path)) {
				addBefore = true
			}
		}
		return true
	})
	if addBefore {
		return true
	}
	// Heuristic 2: the launched body contains a shutdown tie.
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return bodyTied(fun.Body)
	case *ast.Ident:
		return anyTied(decls[fun.Name])
	case *ast.SelectorExpr:
		if cands, ok := decls[fun.Sel.Name]; ok {
			return anyTied(cands)
		}
	}
	return false
}

func anyTied(cands []*ast.FuncDecl) bool {
	for _, fd := range cands {
		if bodyTied(fd.Body) {
			return true
		}
	}
	return false
}

// bodyTied scans a launched body for a shutdown tie.
func bodyTied(body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				tied = true // wg.Done() or ctx.Done()
			}
		case *ast.SelectorExpr:
			if signalName.MatchString(x.Sel.Name) {
				tied = true // t.done, t.closed, s.quit ...
			}
		case *ast.Ident:
			if signalName.MatchString(x.Name) {
				tied = true
			}
		}
		return !tied
	})
	return tied
}

func lastComponent(path string) string {
	if i := strings.LastIndex(path, "."); i >= 0 {
		return path[i+1:]
	}
	return path
}
