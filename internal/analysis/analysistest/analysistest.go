// Package analysistest runs an analyzer over golden fixture packages
// and matches its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// A fixture lives at <dir>/testdata/src/<pkg>/ and marks each expected
// diagnostic on the offending line:
//
//	time.Now() // want `wall-clock read`
//
// The backquoted payload is an anchored-nowhere regexp matched against
// the diagnostic message.  Several `want`s on one line expect several
// diagnostics.  Lines without a want must produce no diagnostic, and
// every want must be matched — both directions fail the test.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cmtk/internal/analysis"
)

// wantRe pulls the expectation payloads off a comment: // want `re` `re`
var wantRe = regexp.MustCompile("want((?:\\s+`[^`]*`)+)")

var payloadRe = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the named fixture packages under dir/testdata/src, runs the
// analyzer (Collect across all fixtures first, then each package), and
// reports mismatches on t.  The fixture root doubles as Pass.ModRoot so
// fixtures can carry their own OBSERVABILITY.md or go.mod-relative
// resources.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	var pkgs []*analysis.Package
	var wants []*expectation
	for _, name := range pkgNames {
		fixDir := filepath.Join(dir, "testdata", "src", name)
		pkg, err := analysis.LoadDir(fixDir, "", "", analysis.LoadOptions{})
		if err != nil {
			t.Fatalf("load fixture %s: %v", name, err)
		}
		if pkg == nil {
			t.Fatalf("fixture %s has no Go files", fixDir)
		}
		pkgs = append(pkgs, pkg)
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, p := range payloadRe.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(p[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p[1], err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p[1]})
					}
				}
			}
		}
	}
	modRoot := filepath.Join(dir, "testdata", "src", pkgNames[0])
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a}, modRoot)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	for _, d := range diags {
		if !match(wants, d) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching `%s`, got none", w.file, w.line, w.raw)
		}
	}
}

// match marks and reports the first unhit expectation covering d.
func match(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// Fprint renders diagnostics one per line — a convenience for debugging
// fixtures.
func Fprint(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&b, d)
	}
	return b.String()
}
