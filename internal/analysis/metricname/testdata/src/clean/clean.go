// Package clean registers well-formed, catalogued metrics plus one
// justified suppression; nothing may be flagged.
package clean

type registry struct{}

func (r *registry) Counter(name, help string, labels ...string) int { return 0 }
func (r *registry) Histogram(name, help string, buckets []float64, labels ...string) int {
	return 0
}

func register(reg *registry) {
	reg.Counter("cmtk_catalogued_total", "documented family", "shell", "kind")
	reg.Histogram("cmtk_catalogued_seconds", "documented histogram",
		[]float64{0.001, 0.01}, "shell")
	//cmlint:allow metricname(fixture: migration-era family documented in the next release)
	reg.Counter("cmtk_not_yet_catalogued_total", "suppressed until documented")
}
