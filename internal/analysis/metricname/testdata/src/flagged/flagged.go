// Package flagged seeds metricname violations: bad prefixes and casing,
// uncatalogued families, oversized and non-literal label sets.
package flagged

type registry struct{}

func (r *registry) Counter(name, help string, labels ...string) int { return 0 }
func (r *registry) Gauge(name, help string, labels ...string) int   { return 0 }
func (r *registry) Histogram(name, help string, buckets []float64, labels ...string) int {
	return 0
}

func register(reg *registry, dynamic string) {
	reg.Counter("shell_fires_total", "missing prefix")                // want `does not match the naming convention`
	reg.Counter("cmtk_Shell_Fires", "bad casing")                     // want `does not match the naming convention`
	reg.Counter("cmtk_mystery_total", "absent from catalogue")        // want `not catalogued in OBSERVABILITY.md`
	reg.Gauge("cmtk_catalogued_depth", "ok name, bad label", "Shell") // want `label "Shell" does not match`
	reg.Counter("cmtk_catalogued_total", "too many labels",           // want `declares 5 labels \(max 4\)`
		"a", "b", "c", "d", "e")
	reg.Counter("cmtk_catalogued_total", "non-literal label", dynamic) // want `non-literal label argument`
	reg.Histogram("cmtk_catalogued_seconds", "bucket arg is not a label",
		[]float64{1, 2}, "shell")
}
