// Package metricname enforces the metric-catalogue contract with
// operators (OBSERVABILITY.md): every metric family registered through
// the obs registry must be named cmtk_<snake_case>, carry a small
// bounded literal label set, and be catalogued in OBSERVABILITY.md.
//
// The extraction logic (FromPackage, Catalogue) is exported and shared
// with the repo's docs_test, so the static checker and the
// live-scrape catalogue test cannot drift apart: both sides agree on
// what counts as a declared metric and what counts as catalogued.
package metricname

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"

	"cmtk/internal/analysis"
)

// Analyzer is the metricname checker.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "obs registry metrics must match cmtk_[a-z0-9_]+, use ≤4 literal snake_case labels, and be catalogued in OBSERVABILITY.md",
	Run:  run,
}

// NameRe is the family naming convention: cmtk_ prefix, lower
// snake_case.
var NameRe = regexp.MustCompile(`^cmtk_[a-z0-9]+(_[a-z0-9]+)*$`)

// LabelRe is the label naming convention.
var LabelRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// MaxLabels bounds a family's label set: more than this many dimensions
// on a hand-rolled registry is a cardinality bug, not a design choice.
const MaxLabels = 4

// Metric is one statically-extracted registration site.
type Metric struct {
	Name   string
	Kind   string // Counter, Gauge or Histogram
	Labels []string
	// LiteralLabels is false when a label argument was not a string
	// literal, so Labels is incomplete.
	LiteralLabels bool
	Pos           token.Position
}

// FromPackage extracts every registry registration in the package:
// calls to a Counter/Gauge/Histogram method whose first argument is a
// string literal.  This is the single source of truth the analyzer and
// docs_test both consume.
func FromPackage(pkg *analysis.Package) []Metric {
	var out []Metric
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind := sel.Sel.Name
			if kind != "Counter" && kind != "Gauge" && kind != "Histogram" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			name, ok := stringLit(call.Args[0])
			if !ok {
				return true
			}
			labelStart := 2
			if kind == "Histogram" {
				labelStart = 3 // (name, help, buckets, labels...)
			}
			m := Metric{Name: name, Kind: kind, LiteralLabels: true, Pos: pkg.Fset.Position(call.Pos())}
			for i := labelStart; i < len(call.Args); i++ {
				if lab, ok := stringLit(call.Args[i]); ok {
					m.Labels = append(m.Labels, lab)
				} else {
					m.LiteralLabels = false
				}
			}
			out = append(out, m)
			return true
		})
	}
	return out
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// catalogueRe pulls backticked cmtk_* family names out of the doc.
var catalogueRe = regexp.MustCompile("`(cmtk_[a-z0-9_]+)`")

// Catalogue parses OBSERVABILITY.md's backticked metric names into a
// membership set.
func Catalogue(doc []byte) map[string]bool {
	names := map[string]bool{}
	for _, m := range catalogueRe.FindAllSubmatch(doc, -1) {
		names[string(m[1])] = true
	}
	return names
}

func run(p *analysis.Pass) error {
	metrics := FromPackage(p.Pkg)
	if len(metrics) == 0 {
		return nil
	}
	catalogue, catErr := loadCatalogue(p.ModRoot)
	for _, m := range metrics {
		pos := posOf(p, m)
		if !NameRe.MatchString(m.Name) {
			p.Reportf(pos, "metric %q does not match the naming convention %s", m.Name, NameRe)
			continue
		}
		if !m.LiteralLabels {
			p.Reportf(pos, "metric %q has a non-literal label argument; label sets must be bounded string literals", m.Name)
		}
		if len(m.Labels) > MaxLabels {
			p.Reportf(pos, "metric %q declares %d labels (max %d); unbounded label sets explode series cardinality", m.Name, len(m.Labels), MaxLabels)
		}
		for _, lab := range m.Labels {
			if !LabelRe.MatchString(lab) {
				p.Reportf(pos, "metric %q label %q does not match %s", m.Name, lab, LabelRe)
			}
		}
		if catErr != nil {
			p.Reportf(pos, "metric %q cannot be checked against the catalogue: %v", m.Name, catErr)
		} else if !catalogue[m.Name] {
			p.Reportf(pos, "metric %q is not catalogued in OBSERVABILITY.md; document it (see \"Adding a metric\")", m.Name)
		}
	}
	return nil
}

func posOf(p *analysis.Pass, m Metric) token.Pos {
	// Metric.Pos is already a resolved Position; re-anchor a Pos in the
	// package fileset for Reportf by matching file and offset.
	for _, f := range p.Pkg.Files {
		tf := p.Pkg.Fset.File(f.Pos())
		if tf != nil && tf.Name() == m.Pos.Filename {
			return tf.Pos(m.Pos.Offset)
		}
	}
	return token.NoPos
}

func loadCatalogue(modRoot string) (map[string]bool, error) {
	doc, err := os.ReadFile(filepath.Join(modRoot, "OBSERVABILITY.md"))
	if err != nil {
		return nil, err
	}
	return Catalogue(doc), nil
}
