package metricname_test

import (
	"testing"

	"cmtk/internal/analysis/analysistest"
	"cmtk/internal/analysis/metricname"
)

func TestMetricnameFlagsSeededViolations(t *testing.T) {
	analysistest.Run(t, ".", metricname.Analyzer, "flagged")
}

func TestMetricnameAcceptsCataloguedAndSuppressed(t *testing.T) {
	analysistest.Run(t, ".", metricname.Analyzer, "clean")
}

func TestCatalogueParsesBacktickedFamilies(t *testing.T) {
	doc := []byte("`cmtk_a_total` text `cmtk_b_seconds` and `not_ours` and `cmtk_c`")
	got := metricname.Catalogue(doc)
	for _, want := range []string{"cmtk_a_total", "cmtk_b_seconds", "cmtk_c"} {
		if !got[want] {
			t.Errorf("catalogue missing %s", want)
		}
	}
	if got["not_ours"] {
		t.Error("catalogue picked up a non-cmtk token")
	}
	if len(got) != 3 {
		t.Errorf("catalogue has %d entries, want 3", len(got))
	}
}
