// Package flagged seeds lockorder violations: rank inversions, a
// double acquire, a descending-loop acquire, and a call into an
// annotated acquiring function while holding a higher rank.
package flagged

import "sync"

type part struct {
	//cmlint:lockrank 10
	dataMu sync.Mutex
}

type store struct {
	//cmlint:lockrank 20
	commitMu sync.Mutex
	shards   []shard
}

type shard struct {
	//cmlint:lockrank 30
	mu sync.Mutex
}

// commit takes the commit lock on behalf of callers.
//
//cmlint:acquires 20
func (s *store) commit() {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
}

// inverted acquires the commit mutex before the partition lock —
// the reverse of the documented order.
func inverted(p *part, s *store) {
	s.commitMu.Lock()
	p.dataMu.Lock() // want `acquires dataMu \(rank 10\) while holding commitMu \(rank 20\)`
	p.dataMu.Unlock()
	s.commitMu.Unlock()
}

// shardFirst takes a shard stripe before the commit mutex.
func shardFirst(s *store) {
	s.shards[0].mu.Lock()
	s.commitMu.Lock() // want `acquires commitMu \(rank 20\) while holding mu \(rank 30\)`
	s.commitMu.Unlock()
	s.shards[0].mu.Unlock()
}

// double locks the same mutex twice on one straight-line path.
func double(s *store) {
	s.commitMu.Lock()
	s.commitMu.Lock() // want `locked again while already held`
	s.commitMu.Unlock()
}

// descending walks partitions backwards while locking — the footprint
// acquire must be ascending.
func descending(parts []*part) {
	for i := len(parts) - 1; i >= 0; i-- {
		parts[i].dataMu.Lock() // want `acquired inside a descending loop`
	}
	for i := 0; i < len(parts); i++ {
		parts[i].dataMu.Unlock()
	}
}

// compactorDescending is the trace-compaction footprint gone wrong:
// commit lock held, but the shard stripes acquired in descending index
// order — deadlock-prone against any ascending acquirer.
func compactorDescending(s *store) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Lock() // want `acquired inside a descending loop`
	}
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}

// callUnderShard calls the annotated commit() while holding a shard
// stripe: a cross-function rank inversion.
func callUnderShard(s *store) {
	s.shards[0].mu.Lock()
	s.commit() // want `calls commit \(acquires rank 20\) while holding mu \(rank 30\)`
	s.shards[0].mu.Unlock()
}
