// Package clean exercises the lock shapes the toolkit actually uses;
// none may produce a diagnostic: ascending rank order, ascending-loop
// footprint acquire, defer-scoped early returns, closures with their
// own lock state, and a suppressed known-odd case.
package clean

import "sync"

type part struct {
	//cmlint:lockrank 10
	dataMu sync.Mutex
}

type store struct {
	//cmlint:lockrank 20
	commitMu sync.Mutex
	shards   []shard
}

type shard struct {
	//cmlint:lockrank 30
	mu sync.Mutex
}

// commit takes the commit lock on behalf of callers.
//
//cmlint:acquires 20
func (s *store) commit(then func()) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	for i := range s.shards {
		s.shards[i].mu.Lock()
		s.shards[i].mu.Unlock()
	}
	if then != nil {
		then()
	}
}

// ascending is the documented footprint shape: dataMu in ascending
// index order, then the commit path.
func ascending(parts []*part, s *store) {
	for i := 0; i < len(parts); i++ {
		parts[i].dataMu.Lock()
	}
	s.commit(nil)
	for i := len(parts) - 1; i >= 0; i-- {
		parts[i].dataMu.Unlock()
	}
}

// earlyReturn holds via defer inside a branch, then re-locks on the
// main path — block-scoped defers must not read as double acquires.
func earlyReturn(s *store, cond bool) int {
	if cond {
		s.commitMu.Lock()
		defer s.commitMu.Unlock()
		return 1
	}
	s.commitMu.Lock()
	s.commitMu.Unlock()
	return 0
}

// closure returns a cancel func locking the same mutex the registration
// path holds; the closure runs later, on its own schedule.
func closure(s *store) func() {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return func() {
		s.commitMu.Lock()
		defer s.commitMu.Unlock()
	}
}

// compactor is the trace-compaction footprint: the commit lock, then
// every shard stripe in ascending index order, all released by defers
// at the end of the fold.  Stop-the-world over an ascending footprint
// is rank-clean.
//
//cmlint:acquires 20, 30
func (s *store) compactor(fold func()) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	defer func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}()
	fold()
}

// suppressed shows the escape hatch: a genuine inversion silenced with
// a justified allow on the line above.
func suppressed(p *part, s *store) {
	s.commitMu.Lock()
	//cmlint:allow lockorder(fixture: deliberate inversion proving the suppression path)
	p.dataMu.Lock()
	p.dataMu.Unlock()
	s.commitMu.Unlock()
}
