package lockorder_test

import (
	"testing"

	"cmtk/internal/analysis/analysistest"
	"cmtk/internal/analysis/lockorder"
)

func TestLockOrderFlagsSeededViolations(t *testing.T) {
	analysistest.Run(t, ".", lockorder.Analyzer, "flagged")
}

func TestLockOrderAcceptsToolkitShapes(t *testing.T) {
	analysistest.Run(t, ".", lockorder.Analyzer, "clean")
}
