// Package lockorder enforces the documented mutex acquisition order
// (DESIGN.md §9): partition dataMu (ascending index) → trace commitMu →
// trace shard mu.  The order is declared once, in the source, next to
// each mutex:
//
//	//cmlint:lockrank 10
//	dataMu sync.Mutex
//
// gives the field a rank; within any one function, ranked mutexes must
// be acquired in strictly ascending rank.  A function that takes ranked
// locks on behalf of its callers declares so on its doc comment:
//
//	//cmlint:acquires 20
//	func (t *T) AppendUnit(...)
//
// and every call to it is checked against the caller's currently held
// ranks — which is how the cross-package half of the invariant (shell
// holds dataMu while trace takes commitMu, never the reverse) becomes
// machine-checked.
//
// Independent of ranks, the analyzer flags double-acquire paths: any
// mutex-named receiver locked twice in one straight-line path without
// an intervening unlock is a self-deadlock.
//
// The scan is linear over each function body in source order — an
// over-approximation that treats branches as sequential.  Two idioms
// are modeled precisely so they do not false-positive: a function
// literal (callback, returned closure, goroutine body) is analyzed as
// its own sequence with its own lock state, and `defer mu.Unlock()`
// releases at the end of its enclosing block (the early-return-
// while-locked idiom).  Anything else surprising is suppressed with
// //cmlint:allow lockorder(reason).
package lockorder

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"cmtk/internal/analysis"
)

// Analyzer is the lockorder checker.
var Analyzer = &analysis.Analyzer{
	Name:    "lockorder",
	Doc:     "mutexes annotated //cmlint:lockrank must be acquired in ascending rank; no double-acquire paths",
	Collect: collect,
	Run:     run,
}

var lockrankRe = regexp.MustCompile(`cmlint:lockrank\s+(\d+)`)
var acquiresRe = regexp.MustCompile(`cmlint:acquires\s+([\d,\s]+)`)

// mutexName matches receivers that are mutexes by convention: mu,
// fooMu, fooMutex.
var mutexName = regexp.MustCompile(`(?i)(^mu$|mu$|mutex$)`)

// facts carries one package's declared ranks and acquiring functions.
type facts struct {
	pkg string
	// ranks maps a mutex field name to its declared rank.  Ranks apply
	// only inside the declaring package: the fields are unexported, so no
	// other package can lock them directly.
	ranks map[string]int
	// acquires maps a function name to the ranks one call transiently
	// acquires (and releases).  Matched by bare name across packages.
	acquires map[string][]int
}

func collect(p *analysis.Pass) any {
	f := &facts{pkg: p.Pkg.Name, ranks: map[string]int{}, acquires: map[string][]int{}}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.Field:
				rank, ok := rankOf(d.Doc, d.Comment)
				if ok {
					for _, name := range d.Names {
						f.ranks[name.Name] = rank
					}
				}
			case *ast.FuncDecl:
				if d.Doc == nil {
					return true
				}
				// Match raw comment lines: CommentGroup.Text() strips
				// directive-shaped lines like //cmlint:acquires.
				for _, c := range d.Doc.List {
					m := acquiresRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					for _, tok := range strings.Split(m[1], ",") {
						if r, err := strconv.Atoi(strings.TrimSpace(tok)); err == nil {
							f.acquires[d.Name.Name] = append(f.acquires[d.Name.Name], r)
						}
					}
				}
			}
			return true
		})
	}
	if len(f.ranks) == 0 && len(f.acquires) == 0 {
		return nil
	}
	return f
}

func rankOf(groups ...*ast.CommentGroup) (int, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if m := lockrankRe.FindStringSubmatch(c.Text); m != nil {
				r, err := strconv.Atoi(m[1])
				if err == nil {
					return r, true
				}
			}
		}
	}
	return 0, false
}

func run(p *analysis.Pass) error {
	ranks := map[string]int{}
	acquires := map[string][]int{}
	for _, raw := range p.Facts {
		f := raw.(*facts)
		if f.pkg == p.Pkg.Name {
			for k, v := range f.ranks {
				ranks[k] = v
			}
		}
		for k, v := range f.acquires {
			acquires[k] = v
		}
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(p, fd.Body, ranks, acquires)
		}
	}
	return nil
}

// checkBody runs the linear lock scan over one execution sequence, then
// recurses into any function literals it contains — each a fresh
// sequence with fresh lock state, because a closure runs on its own
// schedule.
func checkBody(p *analysis.Pass, body *ast.BlockStmt, ranks map[string]int, acquires map[string][]int) {
	var lits []*ast.BlockStmt
	checkSequence(p, body, ranks, acquires, &lits)
	for _, lit := range lits {
		checkBody(p, lit, ranks, acquires)
	}
}

// held is the linear-scan lock state: selector path → rank (-1 for
// unranked mutexes).
type heldLock struct {
	rank int
	pos  token.Pos
	name string
}

func checkSequence(p *analysis.Pass, body *ast.BlockStmt, ranks map[string]int, acquires map[string][]int, lits *[]*ast.BlockStmt) {
	held := map[string]heldLock{}
	maxHeld := func() (string, heldLock, bool) {
		best, ok := heldLock{rank: -1}, false
		path := ""
		for pth, h := range held {
			if h.rank >= 0 && (!ok || h.rank > best.rank) {
				best, path, ok = h, pth, true
			}
		}
		return path, best, ok
	}
	w := &walker{emit: nil, lits: lits}
	w.emit = func(op lockOp) {
		switch op.kind {
		case opLock:
			if prev, dup := held[op.path]; dup {
				p.Reportf(op.pos, "%s locked again while already held (first lock at line %d): double-acquire deadlock",
					op.path, p.Pkg.Fset.Position(prev.pos).Line)
				return
			}
			rank, ranked := ranks[op.name]
			if !ranked {
				rank = -1
			}
			if ranked {
				if _, top, any := maxHeld(); any && top.rank > rank {
					p.Reportf(op.pos, "acquires %s (rank %d) while holding %s (rank %d); ranked locks must be taken in ascending order (DESIGN.md §9)",
						op.name, rank, top.name, top.rank)
				} else if path, top, any := maxHeld(); any && top.rank == rank && path != op.path {
					p.Reportf(op.pos, "acquires %s (rank %d) while already holding %s at the same rank; same-rank locks may only be multiply acquired via an ascending-index loop",
						op.name, rank, top.name)
				}
				if op.loopDir < 0 {
					p.Reportf(op.pos, "ranked lock %s acquired inside a descending loop; the documented order is ascending partition index (DESIGN.md §9)", op.name)
				}
			}
			held[op.path] = heldLock{rank: rank, pos: op.pos, name: op.name}
		case opUnlock:
			delete(held, op.path)
		case opCallAcquires:
			for _, r := range acquires[op.name] {
				if _, top, any := maxHeld(); any && top.rank > r {
					p.Reportf(op.pos, "calls %s (acquires rank %d) while holding %s (rank %d); ranked locks must be taken in ascending order (DESIGN.md §9)",
						op.name, r, top.name, top.rank)
				} else if _, top, any := maxHeld(); any && top.rank == r {
					p.Reportf(op.pos, "calls %s (acquires rank %d) while already holding %s at that rank: reentrant acquire", op.name, r, top.name)
				}
			}
		}
	}
	w.stmtList(body.List, 0)
}

type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
	opCallAcquires
)

type lockOp struct {
	kind lockOpKind
	path string // full selector path, loop indexes collapsed
	name string // final field name (rank key) or called function name
	pos  token.Pos
	// loopDir is +1/-1 when the op sits inside an ascending/descending
	// for loop, 0 otherwise.
	loopDir int
}

// walker emits lock-relevant operations in source order.  It is
// statement-aware: loop direction is tracked for the ascending-index
// rule, `defer mu.Unlock()` releases at the end of its enclosing block,
// and function literals are collected for separate analysis rather than
// merged into the enclosing sequence.
type walker struct {
	emit func(lockOp)
	lits *[]*ast.BlockStmt
}

// stmtList walks one block's statements sequentially, emitting any
// deferred unlocks when the block ends.
func (w *walker) stmtList(list []ast.Stmt, loopDir int) {
	var deferred []lockOp
	for _, s := range list {
		w.stmt(s, loopDir, &deferred)
	}
	for _, op := range deferred {
		w.emit(op)
	}
}

func (w *walker) stmt(s ast.Stmt, loopDir int, deferred *[]lockOp) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmtList(x.List, loopDir)
	case *ast.ExprStmt:
		w.expr(x.X, loopDir)
	case *ast.DeferStmt:
		if sel, ok := x.Call.Fun.(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock") {
			recv := analysis.SelectorPath(sel.X)
			if recv != "" && mutexName.MatchString(lastComponent(recv)) {
				*deferred = append(*deferred, lockOp{kind: opUnlock, path: recv, name: lastComponent(recv), pos: x.Pos()})
				return
			}
		}
		w.expr(x.Call, loopDir)
	case *ast.GoStmt:
		w.expr(x.Call, loopDir)
	case *ast.IfStmt:
		w.stmt(x.Init, loopDir, deferred)
		w.expr(x.Cond, loopDir)
		w.stmtList(x.Body.List, loopDir)
		w.stmt(x.Else, loopDir, deferred)
	case *ast.ForStmt:
		dir := loopDir
		if post, ok := x.Post.(*ast.IncDecStmt); ok {
			if post.Tok == token.INC {
				dir = 1
			} else {
				dir = -1
			}
		}
		w.stmt(x.Init, loopDir, deferred)
		if x.Cond != nil {
			w.expr(x.Cond, dir)
		}
		w.stmtList(x.Body.List, dir)
		w.stmt(x.Post, dir, deferred)
	case *ast.RangeStmt:
		w.expr(x.X, loopDir)
		w.stmtList(x.Body.List, loopDir)
	case *ast.SwitchStmt:
		w.stmt(x.Init, loopDir, deferred)
		if x.Tag != nil {
			w.expr(x.Tag, loopDir)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmtList(cc.Body, loopDir)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(x.Init, loopDir, deferred)
		w.stmt(x.Assign, loopDir, deferred)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmtList(cc.Body, loopDir)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm, loopDir, deferred)
				}
				w.stmtList(cc.Body, loopDir)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(x.Stmt, loopDir, deferred)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			w.expr(e, loopDir)
		}
		for _, e := range x.Lhs {
			w.expr(e, loopDir)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.expr(e, loopDir)
		}
	case *ast.SendStmt:
		w.expr(x.Value, loopDir)
		w.expr(x.Chan, loopDir)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, loopDir)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(x.X, loopDir)
	}
}

// expr walks an expression, classifying calls and diverting function
// literals to separate analysis.
func (w *walker) expr(e ast.Expr, loopDir int) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			*w.lits = append(*w.lits, x.Body)
			return false
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				recv := analysis.SelectorPath(sel.X)
				last := lastComponent(recv)
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if recv != "" && mutexName.MatchString(last) {
						w.emit(lockOp{kind: opLock, path: recv, name: last, pos: x.Pos(), loopDir: loopDir})
						return false
					}
				case "Unlock", "RUnlock":
					if recv != "" && mutexName.MatchString(last) {
						w.emit(lockOp{kind: opUnlock, path: recv, name: last, pos: x.Pos()})
						return false
					}
				}
				w.emit(lockOp{kind: opCallAcquires, path: recv, name: sel.Sel.Name, pos: x.Pos(), loopDir: loopDir})
				return true
			}
			if id, ok := x.Fun.(*ast.Ident); ok {
				w.emit(lockOp{kind: opCallAcquires, name: id.Name, pos: x.Pos(), loopDir: loopDir})
			}
			return true
		}
		return true
	})
}

func lastComponent(path string) string {
	if i := strings.LastIndex(path, "."); i >= 0 {
		return path[i+1:]
	}
	return path
}
