// Package wireready enforces the marshal-boundary invariant from the
// engine hot path (DESIGN.md §7): a transport Message carries
// in-process-only fields (BindingsVal, TriggerEvent) that must be
// folded into their wire form via Message.WireReady before the message
// crosses a serializing boundary — a TCP frame or the durable reliable
// journal.  Marshaling an unmaterialized Message silently drops bound
// values on crash replay.
//
// The check is per function: any json.Marshal/MarshalIndent or
// encoder.Encode call whose argument is (or syntactically contains) a
// value of declared type Message/[]Message/*Message must be preceded in
// the same function by a WireReady call, or carry an allow annotation
// naming the caller that materializes.  Declared types are resolved
// from parameters, receivers, var declarations and short assignments in
// the same function — no type checker, by design; the Message type is
// only matched in package transport itself or under the qualified name
// transport.Message elsewhere.
package wireready

import (
	"go/ast"
	"go/token"
	"strings"

	"cmtk/internal/analysis"
)

// Analyzer is the wireready checker.
var Analyzer = &analysis.Analyzer{
	Name: "wireready",
	Doc:  "transport Messages must be WireReady-materialized before any marshal or journal boundary",
	Run:  run,
}

func run(p *analysis.Pass) error {
	for _, file := range p.Pkg.Files {
		jsonName := analysis.ImportName(file, "encoding/json")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(p, file, fd, jsonName)
		}
	}
	return nil
}

// typeString renders a type expression to a compact string:
// []Message → "[]Message", *transport.Message → "*transport.Message".
func typeString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return typeString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + typeString(x.X)
	case *ast.ArrayType:
		return "[]" + typeString(x.Elt)
	case *ast.MapType:
		return "map[" + typeString(x.Key) + "]" + typeString(x.Value)
	}
	return ""
}

// isMessageType reports whether a rendered type names the transport
// message: bare Message inside package transport, transport.Message
// anywhere.
func isMessageType(pkgName, t string) bool {
	t = strings.TrimLeft(t, "*[]")
	if t == "transport.Message" {
		return true
	}
	return pkgName == "transport" && t == "Message"
}

func checkFunc(p *analysis.Pass, file *ast.File, fd *ast.FuncDecl, jsonName string) {
	// Phase 1: map identifier → declared type string from the signature
	// and the body's explicit declarations, and propagate through simple
	// copies (wm := m).
	types := map[string]string{}
	bind := func(names []*ast.Ident, t string) {
		for _, n := range names {
			if n.Name != "_" {
				types[n.Name] = t
			}
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			bind(f.Names, typeString(f.Type))
		}
	}
	for _, f := range fd.Type.Params.List {
		bind(f.Names, typeString(f.Type))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeclStmt:
			if gd, ok := x.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && vs.Type != nil {
						bind(vs.Names, typeString(vs.Type))
					}
				}
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				switch rhs := x.Rhs[i].(type) {
				case *ast.CompositeLit:
					if t := typeString(rhs.Type); t != "" {
						types[id.Name] = t
					}
				case *ast.UnaryExpr:
					if cl, ok := rhs.X.(*ast.CompositeLit); ok && rhs.Op == token.AND {
						if t := typeString(cl.Type); t != "" {
							types[id.Name] = "*" + t
						}
					}
				case *ast.Ident:
					if t, ok := types[rhs.Name]; ok {
						types[id.Name] = t
					}
				}
			}
		}
		return true
	})

	// Phase 2: find the first WireReady call position, then check each
	// marshal site against it.
	firstReady := token.Pos(-1)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "WireReady" {
				if firstReady < 0 || call.Pos() < firstReady {
					firstReady = call.Pos()
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		isMarshal := false
		if root, ok := sel.X.(*ast.Ident); ok && jsonName != "" && root.Name == jsonName &&
			(sel.Sel.Name == "Marshal" || sel.Sel.Name == "MarshalIndent") {
			isMarshal = true
		}
		if sel.Sel.Name == "Encode" {
			isMarshal = true
		}
		if !isMarshal {
			return true
		}
		for _, name := range messageRoots(p.Pkg.Name, call.Args[0], types) {
			if firstReady >= 0 && firstReady < call.Pos() {
				continue // materialized earlier in this function
			}
			p.Reportf(call.Pos(), "%s of %s (type %s) without a prior WireReady call in this function; in-process fields (BindingsVal, TriggerEvent) would not survive the wire or a crash replay",
				sel.Sel.Name, name, types[name])
		}
		return true
	})
}

// messageRoots returns identifiers inside arg whose declared type is the
// transport message: the argument's own root (unwrapping indexes,
// derefs, parens, slices) and, for composite literals, each field
// value's root.
func messageRoots(pkgName string, arg ast.Expr, types map[string]string) []string {
	var out []string
	add := func(e ast.Expr) {
		root := analysis.SelectorPath(e)
		if i := strings.Index(root, "."); i > 0 {
			root = root[:i]
		}
		if root == "" {
			return
		}
		if t, ok := types[root]; ok && isMessageType(pkgName, t) {
			out = append(out, root)
		}
	}
	if cl, ok := arg.(*ast.CompositeLit); ok {
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				add(kv.Value)
			} else {
				add(elt)
			}
		}
		return out
	}
	add(arg)
	return out
}
