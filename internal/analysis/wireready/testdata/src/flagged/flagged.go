// Package transport seeds wireready violations: Messages crossing
// marshal and journal boundaries without materialization.
package transport

import "encoding/json"

// Message mirrors the transport message shape: in-process fields that
// must be folded before serialization.
type Message struct {
	Kind     string
	Bindings map[string]string
}

// WireReady materializes in-process fields.
func (m *Message) WireReady() {}

type journal struct{}

func (j *journal) Append(typ byte, data []byte) error { return nil }

type encoder interface {
	Encode(v any) error
}

func frame(batch []Message) ([]byte, error) {
	return json.Marshal(batch) // want `Marshal of batch \(type \[\]Message\) without a prior WireReady call`
}

func frameOne(m Message) ([]byte, error) {
	return json.Marshal(m) // want `Marshal of m \(type Message\) without a prior WireReady call`
}

type queued struct {
	Seq uint64
	Msg Message
}

func journalOne(j *journal, m Message) error {
	data, err := json.Marshal(queued{Seq: 1, Msg: m}) // want `Marshal of m \(type Message\) without a prior WireReady call`
	if err != nil {
		return err
	}
	return j.Append(1, data)
}

func encodeOne(enc encoder, m *Message) error {
	return enc.Encode(m) // want `Encode of m \(type \*Message\) without a prior WireReady call`
}
