// Package transport (clean fixture): materialized marshals, non-Message
// serialization, and a justified caller-materializes suppression.
package transport

import "encoding/json"

type Message struct {
	Kind     string
	Bindings map[string]string
}

func (m *Message) WireReady() {}

// frame materializes every message before the boundary.
func frame(batch []Message) ([]byte, error) {
	for i := range batch {
		batch[i].WireReady()
	}
	return json.Marshal(batch)
}

// snapshot serializes a non-Message value; no materialization needed.
func snapshot(state map[string]uint64) ([]byte, error) {
	return json.Marshal(state)
}

// relay is materialized by its only caller, which is a legitimate shape
// when justified.
func relay(m Message) ([]byte, error) {
	//cmlint:allow wireready(fixture: the single caller renders m wire-ready before relay)
	return json.Marshal(m)
}
