package wireready_test

import (
	"testing"

	"cmtk/internal/analysis/analysistest"
	"cmtk/internal/analysis/wireready"
)

func TestWirereadyFlagsSeededViolations(t *testing.T) {
	analysistest.Run(t, ".", wireready.Analyzer, "flagged")
}

func TestWirereadyAcceptsMaterializedAndSuppressed(t *testing.T) {
	analysistest.Run(t, ".", wireready.Analyzer, "clean")
}
