// Package demarcation implements the Demarcation Protocol [BGM92] for
// inter-site inequality constraints X ≤ Y, the Section 6.1 scenario.
//
// Each side keeps a local limit: Lx at X's site (a ceiling for X) and Ly
// at Y's site (a floor for Y).  The local constraint managers enforce
// X ≤ Lx and Y ≥ Ly, and the protocol maintains Lx ≤ Ly, so
//
//	X ≤ Lx ≤ Ly ≤ Y
//
// holds at all times — a strong, non-metric guarantee — while updates
// that stay within the local limit proceed with no remote communication
// at all.  Only updates that would cross the limit trigger a
// limit-change request to the peer, which grants slack according to a
// configurable policy (the paper notes different policies are compared
// through the limit-change guarantee).
//
// The invariant ordering trick: a site always moves its own limit in the
// safe direction *before* replying to a request, so Lx ≤ Ly is never
// violated in between messages even though there is no distributed
// transaction anywhere.
package demarcation

import (
	"fmt"
	"strconv"
	"sync"

	"cmtk/internal/data"
	"cmtk/internal/durable"
	"cmtk/internal/guarantee"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/transport"
)

// MessageKind is the custom transport kind used by agents.
const MessageKind = "demarc"

// Policy decides how much slack to grant a peer's limit-change request.
// requested is what the peer asked for; available is the most this side
// can give without violating its local constraint.
type Policy func(requested, available int64) int64

// Exact grants exactly what was asked, capped by availability.  Minimal
// slack transfer, maximal future round trips.
func Exact(requested, available int64) int64 {
	if requested < available {
		return requested
	}
	return available
}

// Generous grants the request plus half the remaining slack, so bursts of
// same-direction updates need fewer round trips.
func Generous(requested, available int64) int64 {
	if requested >= available {
		return available
	}
	return requested + (available-requested)/2
}

// Stats counts an agent's operations.
type Stats struct {
	LocalOps    int // updates satisfied within the local limit
	RemoteAsks  int // limit-change requests sent to the peer
	GrantsGiven int // limit-change requests granted to the peer
	Denied      int // updates that failed for lack of slack
}

// Agent manages one side of the constraint X ≤ Y.
type Agent struct {
	sh        *shell.Shell
	site      string
	peerShell string
	item      data.ItemName // X (lower side) or Y (upper side)
	limit     data.ItemName // Lx or Ly, a CM-private item
	lower     bool          // true for the X side
	policy    Policy

	mu      sync.Mutex
	value   int64
	lim     int64
	nextReq int64
	pending map[int64]*pendingOp
	stats   Stats

	// durable state (see durable.go): dur journals every (value, limit)
	// transition, recovered marks that prior state was restored so Init
	// keeps it, durErr latches the first journaling failure
	dur       *durable.Log
	recovered bool
	durErr    error
}

type pendingOp struct {
	delta  int64
	onDone func(ok bool)
}

// NewAgent builds one side of the protocol.  item is the constrained
// local data item; limit is the CM-private limit item; lower selects the
// X (true) or Y (false) role; peerShell is the shell ID hosting the other
// side.  The agent registers its message handler on the shell.
func NewAgent(sh *shell.Shell, site, peerShell string, item, limit data.ItemName, lower bool, policy Policy) *Agent {
	if policy == nil {
		policy = Exact
	}
	a := &Agent{
		sh: sh, site: site, peerShell: peerShell,
		item: item, limit: limit, lower: lower, policy: policy,
		pending: map[int64]*pendingOp{},
	}
	sh.HandleKind(MessageKind, a.onMessage)
	return a
}

// Init sets the initial value and limit.  The deployment must choose
// initial values satisfying X ≤ Lx ≤ Ly ≤ Y globally.  When durable state
// was recovered (EnableDurable), the recovered position wins over the
// arguments: re-running the deployment's initialization after a crash
// must not reset slack this side already gave away.
func (a *Agent) Init(value, limit int64) {
	a.mu.Lock()
	if a.recovered {
		value, limit = a.value, a.lim
	} else {
		a.value = value
		a.lim = limit
		a.persistLocked()
	}
	a.mu.Unlock()
	a.sh.RequestWrite(a.item, data.NewInt(value))
	a.sh.WriteAux(a.limit, data.NewInt(limit))
}

// Value returns the current local value.
func (a *Agent) Value() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.value
}

// Limit returns the current local limit.
func (a *Agent) Limit() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lim
}

// Stats returns a snapshot of the operation counters.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// safeLocally reports whether value v satisfies the local limit
// constraint for this side's role.
func (a *Agent) safeLocally(v int64) bool {
	if a.lower {
		return v <= a.lim
	}
	return v >= a.lim
}

// Update applies a local delta to the constrained item.  When the new
// value stays within the local limit it applies immediately with no
// remote traffic and onDone(true) is called before Update returns.
// Otherwise a limit-change request is sent to the peer and onDone fires
// when the grant (or denial) arrives.  onDone may be nil.
func (a *Agent) Update(delta int64, onDone func(ok bool)) {
	if onDone == nil {
		onDone = func(bool) {}
	}
	a.mu.Lock()
	nv := a.value + delta
	if a.safeLocally(nv) {
		a.value = nv
		a.stats.LocalOps++
		a.persistLocked()
		a.mu.Unlock()
		a.sh.RequestWrite(a.item, data.NewInt(nv))
		onDone(true)
		return
	}
	// Need the peer to move its limit first.
	var need int64
	if a.lower {
		need = nv - a.lim // raise Lx (and first Ly) by this much
	} else {
		need = a.lim - nv // lower Ly (and first Lx) by this much
	}
	a.nextReq++
	id := a.nextReq
	a.pending[id] = &pendingOp{delta: delta, onDone: onDone}
	a.stats.RemoteAsks++
	a.mu.Unlock()
	err := a.sh.SendCustom(a.peerShell, transport.Message{
		Kind: MessageKind,
		Payload: map[string]string{
			"op":     "request",
			"amount": strconv.FormatInt(need, 10),
			"req":    strconv.FormatInt(id, 10),
		},
	})
	if err != nil {
		a.mu.Lock()
		delete(a.pending, id)
		a.stats.Denied++
		a.mu.Unlock()
		onDone(false)
	}
}

// onMessage handles protocol traffic (runs on the shell's event queue).
func (a *Agent) onMessage(m transport.Message) {
	switch m.Payload["op"] {
	case "request":
		amount, err := strconv.ParseInt(m.Payload["amount"], 10, 64)
		if err != nil || amount < 0 {
			return
		}
		granted := a.grant(amount)
		a.sh.SendCustom(m.From, transport.Message{
			Kind: MessageKind,
			Payload: map[string]string{
				"op":     "grant",
				"amount": strconv.FormatInt(granted, 10),
				"req":    m.Payload["req"],
			},
		})
	case "grant":
		amount, err := strconv.ParseInt(m.Payload["amount"], 10, 64)
		if err != nil || amount < 0 {
			return
		}
		id, _ := strconv.ParseInt(m.Payload["req"], 10, 64)
		a.onGrant(id, amount)
	}
}

// grant moves this side's limit in the safe direction by up to the
// policy-decided amount and returns how much it moved.  Moving our own
// limit before replying is what keeps Lx ≤ Ly invariant at every instant.
func (a *Agent) grant(requested int64) int64 {
	a.mu.Lock()
	var available int64
	if a.lower {
		// Peer (upper) wants to lower Ly; we must lower Lx first.  We can
		// lower it to our current value at most.
		available = a.lim - a.value
	} else {
		// Peer (lower) wants to raise Lx; we must raise Ly first, at most
		// to our current value.
		available = a.value - a.lim
	}
	if available < 0 {
		available = 0
	}
	g := a.policy(requested, available)
	if g < 0 {
		g = 0
	}
	if g > available {
		g = available
	}
	if a.lower {
		a.lim -= g
	} else {
		a.lim += g
	}
	newLim := a.lim
	if g > 0 {
		a.stats.GrantsGiven++
		// Persist before replying: once the grant is on the wire the peer
		// will widen its limit, so this side's narrowing must survive a
		// crash or the global ordering breaks.
		a.persistLocked()
	}
	a.mu.Unlock()
	if g > 0 {
		a.sh.WriteAux(a.limit, data.NewInt(newLim))
	}
	return g
}

// onGrant applies a received grant to our limit and completes the pending
// update when possible.
func (a *Agent) onGrant(id, amount int64) {
	a.mu.Lock()
	op, ok := a.pending[id]
	if ok {
		delete(a.pending, id)
	}
	if a.lower {
		a.lim += amount
	} else {
		a.lim -= amount
	}
	newLim := a.lim
	a.persistLocked()
	a.mu.Unlock()
	a.sh.WriteAux(a.limit, data.NewInt(newLim))
	if !ok {
		return
	}
	a.mu.Lock()
	nv := a.value + op.delta
	if a.safeLocally(nv) {
		a.value = nv
		a.persistLocked()
		a.mu.Unlock()
		a.sh.RequestWrite(a.item, data.NewInt(nv))
		op.onDone(true)
		return
	}
	a.stats.Denied++
	a.mu.Unlock()
	op.onDone(false)
}

// Guarantee returns the protocol's invariant guarantee X ≤ Y for the two
// item base names, checkable on any recorded trace.  States before both
// items exist (initialization) satisfy it vacuously.
func Guarantee(xBase, yBase string) guarantee.Guarantee {
	cmp := rule.Binary{Op: "<=",
		L: rule.ItemRef{Base: xBase},
		R: rule.ItemRef{Base: yBase},
	}
	missing := rule.Binary{Op: "||",
		L: rule.Unary{Op: '!', X: rule.Call{Fn: "exists", Args: []rule.Expr{rule.ItemRef{Base: xBase}}}},
		R: rule.Unary{Op: '!', X: rule.Call{Fn: "exists", Args: []rule.Expr{rule.ItemRef{Base: yBase}}}},
	}
	pred := rule.Binary{Op: "||", L: missing, R: cmp}
	return guarantee.Invariant{Label: fmt.Sprintf("%s<=%s", xBase, yBase), Pred: pred}
}
