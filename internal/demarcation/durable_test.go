package demarcation

import (
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/durable"
	"cmtk/internal/obs"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/trace"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

// durPair is a two-shell demarcation deployment whose agents persist to
// per-side state directories, rebuildable over the same directories to
// model a full restart.
type durPair struct {
	clk    *vclock.Virtual
	stores []*durable.Store
	shells []*shell.Shell
	xa, ya *Agent
	xRec   bool
	yRec   bool
}

func buildDurPair(t *testing.T, dirX, dirY string, x, lx, ly, y int64) *durPair {
	t.Helper()
	p := &durPair{}
	p.clk = vclock.NewVirtual(vclock.Epoch)
	spec, err := rule.ParseSpecString(`
site SX
site SY
item X @ SX
item Y @ SY
private Lx @ SX
private Ly @ SY
`)
	if err != nil {
		t.Fatal(err)
	}
	bus := transport.NewBus(p.clk, 100*time.Millisecond)
	opts := shell.Options{Clock: p.clk, Trace: trace.New(nil), Metrics: obs.NewRegistry(), Fires: obs.NewRing(8)}

	stX, err := durable.Open(dirX, durable.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	stY, err := durable.Open(dirY, durable.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	p.stores = []*durable.Store{stX, stY}

	sx := shell.New("sx", spec, opts)
	sx.AddSite("SX", nil)
	sx.Route("SY", "sy")
	sy := shell.New("sy", spec, opts)
	sy.AddSite("SY", nil)
	sy.Route("SX", "sx")
	if _, err := sx.EnableDurable(stX); err != nil {
		t.Fatal(err)
	}
	if _, err := sy.EnableDurable(stY); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*shell.Shell{sx, sy} {
		if err := s.Attach(bus); err != nil {
			t.Fatal(err)
		}
	}
	p.xa = NewAgent(sx, "SX", "sy", data.Item("X"), data.Item("Lx"), true, Exact)
	p.ya = NewAgent(sy, "SY", "sx", data.Item("Y"), data.Item("Ly"), false, Exact)
	if p.xRec, err = p.xa.EnableDurable(stX); err != nil {
		t.Fatal(err)
	}
	if p.yRec, err = p.ya.EnableDurable(stY); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*shell.Shell{sx, sy} {
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
	}
	p.shells = []*shell.Shell{sx, sy}
	// The deployment always re-runs its initialization; recovered agents
	// must keep their position instead.
	p.xa.Init(x, lx)
	p.ya.Init(y, ly)
	p.clk.Advance(time.Second)
	return p
}

func (p *durPair) shutdown(t *testing.T) {
	t.Helper()
	for _, s := range p.shells {
		s.Stop()
	}
	for _, st := range p.stores {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func (p *durPair) invariant(t *testing.T) {
	t.Helper()
	x, lx := p.xa.Value(), p.xa.Limit()
	ly, y := p.ya.Limit(), p.ya.Value()
	if !(x <= lx && lx <= ly && ly <= y) {
		t.Fatalf("invariant broken: X=%d Lx=%d Ly=%d Y=%d", x, lx, ly, y)
	}
}

// TestLimitsSurviveRestart: after the protocol has moved slack between
// the sides, a full restart (both agents rebuilt over their state
// directories, deployment re-running Init with the original arguments)
// resumes the moved limits — not the stale initial ones — and the global
// ordering X ≤ Lx ≤ Ly ≤ Y still holds.
func TestLimitsSurviveRestart(t *testing.T) {
	dirX, dirY := t.TempDir(), t.TempDir()
	p := buildDurPair(t, dirX, dirY, 10, 50, 50, 100)
	if p.xRec || p.yRec {
		t.Fatal("fresh deployment reported recovered state")
	}
	// Local headroom first, then an update that forces a limit-change
	// round trip: X wants 70, Lx is 50, so Ly must rise (Y side grants).
	okCh := make(chan bool, 1)
	p.xa.Update(60, func(ok bool) { okCh <- ok })
	p.clk.Advance(5 * time.Second)
	select {
	case ok := <-okCh:
		if !ok {
			t.Fatal("update denied despite available slack")
		}
	default:
		t.Fatal("update never completed")
	}
	p.invariant(t)
	xv, xl := p.xa.Value(), p.xa.Limit()
	yv, yl := p.ya.Value(), p.ya.Limit()
	if xl == 50 || yl == 50 {
		t.Fatalf("limits never moved: Lx=%d Ly=%d", xl, yl)
	}
	p.shutdown(t)

	p2 := buildDurPair(t, dirX, dirY, 10, 50, 50, 100)
	defer p2.shutdown(t)
	if !p2.xRec || !p2.yRec {
		t.Fatal("restart did not recover durable state")
	}
	if p2.xa.Value() != xv || p2.xa.Limit() != xl {
		t.Fatalf("X side = (%d, %d), want recovered (%d, %d)", p2.xa.Value(), p2.xa.Limit(), xv, xl)
	}
	if p2.ya.Value() != yv || p2.ya.Limit() != yl {
		t.Fatalf("Y side = (%d, %d), want recovered (%d, %d)", p2.ya.Value(), p2.ya.Limit(), yv, yl)
	}
	p2.invariant(t)

	// The recovered deployment still makes progress.
	p2.xa.Update(5, nil)
	p2.clk.Advance(5 * time.Second)
	p2.invariant(t)
}

// TestCrashCannotResurrectGrantedSlack: the X side grants slack (lowers
// Lx) and then crashes.  Its next incarnation must come back with the
// lowered limit — resurrecting the old one would break Lx ≤ Ly.
func TestCrashCannotResurrectGrantedSlack(t *testing.T) {
	dirX, dirY := t.TempDir(), t.TempDir()
	p := buildDurPair(t, dirX, dirY, 10, 50, 50, 100)
	// Y wants to go below Ly: Y side asks X side to lower Lx first.
	okCh := make(chan bool, 1)
	p.ya.Update(-60, func(ok bool) { okCh <- ok }) // Y 100 → 40 < Ly 50
	p.clk.Advance(5 * time.Second)
	select {
	case ok := <-okCh:
		if !ok {
			t.Fatal("downward update denied despite slack")
		}
	default:
		t.Fatal("update never completed")
	}
	lxAfterGrant := p.xa.Limit()
	if lxAfterGrant >= 50 {
		t.Fatalf("Lx = %d, want lowered below 50", lxAfterGrant)
	}
	// X side crashes hard; nothing after this instant persists.
	p.stores[0].Crash()
	for _, s := range p.shells {
		s.Stop()
	}
	for _, st := range p.stores {
		st.Close()
	}

	p2 := buildDurPair(t, dirX, dirY, 10, 50, 50, 100)
	defer p2.shutdown(t)
	if !p2.xRec {
		t.Fatal("crashed X side recovered nothing")
	}
	if got := p2.xa.Limit(); got != lxAfterGrant {
		t.Fatalf("Lx after crash = %d, want the granted-away %d", got, lxAfterGrant)
	}
	p2.invariant(t)
}
