package demarcation

import (
	"math/rand"
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/trace"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

// pair assembles two agents for X ≤ Y on two shells over a bus.
type pair struct {
	clk    *vclock.Virtual
	tr     *trace.Trace
	xAgent *Agent
	yAgent *Agent
}

func newPair(t *testing.T, policy Policy, x, lx, ly, y int64) *pair {
	t.Helper()
	clk := vclock.NewVirtual(vclock.Epoch)
	tr := trace.New(nil)
	spec, err := rule.ParseSpecString(`
site SX
site SY
item X @ SX
item Y @ SY
private Lx @ SX
private Ly @ SY
`)
	if err != nil {
		t.Fatal(err)
	}
	bus := transport.NewBus(clk, 100*time.Millisecond)
	opts := shell.Options{Clock: clk, Trace: tr}
	sx := shell.New("sx", spec, opts)
	sx.AddSite("SX", nil)
	sx.Route("SY", "sy")
	sy := shell.New("sy", spec, opts)
	sy.AddSite("SY", nil)
	sy.Route("SX", "sx")
	if err := sx.Attach(bus); err != nil {
		t.Fatal(err)
	}
	if err := sy.Attach(bus); err != nil {
		t.Fatal(err)
	}
	if err := sx.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sy.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sx.Stop(); sy.Stop() })

	xa := NewAgent(sx, "SX", "sy", data.Item("X"), data.Item("Lx"), true, policy)
	ya := NewAgent(sy, "SY", "sx", data.Item("Y"), data.Item("Ly"), false, policy)
	xa.Init(x, lx)
	ya.Init(y, ly)
	clk.Advance(time.Second)
	return &pair{clk: clk, tr: tr, xAgent: xa, yAgent: ya}
}

func (p *pair) checkInvariant(t *testing.T) {
	t.Helper()
	rep := Guarantee("X", "Y").Check(p.tr)
	if !rep.Holds {
		t.Fatalf("X<=Y violated: %v\ntrace:\n%s", rep.Violations, p.tr)
	}
}

func TestLocalOpsWithinSlack(t *testing.T) {
	p := newPair(t, Exact, 0, 50, 50, 100)
	done := 0
	for i := 0; i < 50; i++ {
		p.xAgent.Update(1, func(ok bool) {
			if !ok {
				t.Error("in-slack update denied")
			}
			done++
		})
	}
	p.clk.Advance(time.Second)
	if done != 50 {
		t.Fatalf("done = %d", done)
	}
	st := p.xAgent.Stats()
	if st.LocalOps != 50 || st.RemoteAsks != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if p.xAgent.Value() != 50 {
		t.Fatalf("X = %d", p.xAgent.Value())
	}
	p.checkInvariant(t)
}

func TestLimitChangeGranted(t *testing.T) {
	p := newPair(t, Exact, 45, 50, 50, 100)
	// X wants +10: crosses Lx=50, peer has slack (Y=100, Ly=50), so the
	// request is granted.
	var ok bool
	donec := false
	p.xAgent.Update(10, func(b bool) { ok = b; donec = true })
	p.clk.Advance(5 * time.Second)
	if !donec || !ok {
		t.Fatalf("update done=%v ok=%v", donec, ok)
	}
	if p.xAgent.Value() != 55 {
		t.Fatalf("X = %d", p.xAgent.Value())
	}
	st := p.xAgent.Stats()
	if st.RemoteAsks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if p.xAgent.Limit() < 55 {
		t.Fatalf("Lx = %d", p.xAgent.Limit())
	}
	if p.yAgent.Limit() < p.xAgent.Limit() {
		t.Fatalf("Ly = %d < Lx = %d", p.yAgent.Limit(), p.xAgent.Limit())
	}
	p.checkInvariant(t)
}

func TestLimitChangeDeniedWhenNoSlack(t *testing.T) {
	p := newPair(t, Exact, 45, 50, 50, 50) // Y sits on its floor: no slack
	var ok bool
	donec := false
	p.xAgent.Update(10, func(b bool) { ok = b; donec = true })
	p.clk.Advance(5 * time.Second)
	if !donec {
		t.Fatal("update never completed")
	}
	if ok {
		t.Fatal("update granted without slack")
	}
	if p.xAgent.Value() != 45 {
		t.Fatalf("X moved to %d", p.xAgent.Value())
	}
	if st := p.xAgent.Stats(); st.Denied != 1 {
		t.Fatalf("stats = %+v", st)
	}
	p.checkInvariant(t)
}

func TestUpperSideDecrease(t *testing.T) {
	p := newPair(t, Exact, 0, 50, 50, 100)
	// Y wants to drop to 30: below Ly=50, needs X's side to lower Lx
	// first.  X=0 so Lx can drop to 30.
	var ok bool
	p.yAgent.Update(-70, func(b bool) { ok = b })
	p.clk.Advance(5 * time.Second)
	if !ok {
		t.Fatal("upper decrease denied despite slack")
	}
	if p.yAgent.Value() != 30 {
		t.Fatalf("Y = %d", p.yAgent.Value())
	}
	if p.xAgent.Limit() > p.yAgent.Limit() {
		t.Fatalf("Lx = %d > Ly = %d", p.xAgent.Limit(), p.yAgent.Limit())
	}
	p.checkInvariant(t)
}

func TestGenerousPolicyReducesRoundTrips(t *testing.T) {
	run := func(policy Policy) int {
		p := newPair(t, policy, 0, 10, 10, 1000)
		for i := 0; i < 50; i++ {
			p.xAgent.Update(5, nil)
			p.clk.Advance(2 * time.Second)
		}
		p.checkInvariant(t)
		return p.xAgent.Stats().RemoteAsks
	}
	exact := run(Exact)
	generous := run(Generous)
	if generous >= exact {
		t.Fatalf("generous policy (%d asks) not better than exact (%d)", generous, exact)
	}
}

func TestPolicyFunctions(t *testing.T) {
	if Exact(5, 10) != 5 || Exact(15, 10) != 10 {
		t.Error("Exact broken")
	}
	if Generous(5, 10) != 7 { // 5 + (10-5)/2
		t.Errorf("Generous(5,10) = %d", Generous(5, 10))
	}
	if Generous(15, 10) != 10 {
		t.Errorf("Generous(15,10) = %d", Generous(15, 10))
	}
}

// Property-style: random interleaved updates never violate X <= Y, and
// every granted update left the invariant intact at every state.
func TestRandomizedUpdatesKeepInvariant(t *testing.T) {
	p := newPair(t, Generous, 0, 100, 100, 200)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		if rng.Intn(2) == 0 {
			p.xAgent.Update(int64(rng.Intn(21)-5), nil) // mostly increments
		} else {
			p.yAgent.Update(int64(rng.Intn(21)-15), nil) // mostly decrements
		}
		p.clk.Advance(500 * time.Millisecond)
	}
	p.clk.Advance(10 * time.Second)
	p.checkInvariant(t)
	if p.xAgent.Value() > p.yAgent.Value() {
		t.Fatalf("final X=%d > Y=%d", p.xAgent.Value(), p.yAgent.Value())
	}
	// Limits still ordered.
	if p.xAgent.Limit() > p.yAgent.Limit() {
		t.Fatalf("Lx=%d > Ly=%d", p.xAgent.Limit(), p.yAgent.Limit())
	}
}
