// Durable limits.  The demarcation invariant X ≤ Lx ≤ Ly ≤ Y is only as
// strong as the limits' storage: if a crash forgets that this side gave
// slack away, the restarted agent resurrects its old limit and the global
// ordering silently breaks.  EnableDurable journals every (value, limit)
// transition, so a restarted side resumes exactly the slack position it
// had granted — the invariant survives the crash.  In-flight limit-change
// requests are not persisted here; they live in the transport journal and
// are replayed by the reliability layer, and a grant that arrives for a
// request id the new incarnation does not recognise still moves the limit
// (the safe direction) — only the waiting application callback is lost.

package demarcation

import (
	"encoding/json"
	"fmt"

	"cmtk/internal/durable"
)

// dStateRec is the journal record type for one agent-state transition;
// its data is a full JSON dState, so replay is last-record-wins and a
// checkpoint snapshot is the same encoding.
const dStateRec byte = 1

type dState struct {
	Value int64
	Lim   int64
}

// durCheckpointBytes is the journal size that triggers compaction.
const durCheckpointBytes = 64 << 10

// EnableDurable makes the agent's value and limit crash-recoverable in
// the store (log "demarc-"+site).  When prior state is found it is
// installed and reported as recovered=true, and a later Init keeps the
// recovered position instead of resetting it.  Call it after NewAgent and
// before Init or any traffic.
func (a *Agent) EnableDurable(store *durable.Store) (recovered bool, err error) {
	lg, rec, err := store.Log("demarc-" + a.site)
	if err != nil {
		return false, err
	}
	if rec == nil {
		return false, fmt.Errorf("demarcation: durable log for %s already in use", a.site)
	}
	st, found, err := decodeState(rec)
	if err != nil {
		return false, err
	}
	a.mu.Lock()
	if a.dur != nil {
		a.mu.Unlock()
		return false, fmt.Errorf("demarcation: durable state already enabled")
	}
	a.dur = lg
	if found {
		a.value, a.lim = st.Value, st.Lim
		a.recovered = true
	}
	a.checkpointLocked()
	a.mu.Unlock()
	store.OnClose(func() error {
		a.mu.Lock()
		defer a.mu.Unlock()
		a.checkpointLocked()
		return a.durErr
	})
	return found, nil
}

// decodeState folds a recovery into the latest persisted state.
func decodeState(rec *durable.Recovery) (st dState, found bool, err error) {
	if rec.Snapshot != nil {
		if err := json.Unmarshal(rec.Snapshot, &st); err != nil {
			return st, false, fmt.Errorf("demarcation: decoding snapshot: %w", err)
		}
		found = true
	}
	for _, r := range rec.Records {
		if r.Type != dStateRec {
			continue
		}
		if err := json.Unmarshal(r.Data, &st); err != nil {
			return st, false, fmt.Errorf("demarcation: decoding state record: %w", err)
		}
		found = true
	}
	return st, found, nil
}

// persistLocked journals the current (value, limit) under a.mu.  Errors
// latch, like a dead disk.
func (a *Agent) persistLocked() {
	if a.dur == nil || a.durErr != nil {
		return
	}
	b, err := json.Marshal(dState{Value: a.value, Lim: a.lim})
	if err == nil {
		err = a.dur.Append(dStateRec, b)
	}
	if err != nil {
		a.durErr = err
		return
	}
	if a.dur.WALSize() >= durCheckpointBytes {
		a.checkpointLocked()
	}
}

func (a *Agent) checkpointLocked() {
	if a.dur == nil || a.durErr != nil {
		return
	}
	b, err := json.Marshal(dState{Value: a.value, Lim: a.lim})
	if err == nil {
		err = a.dur.Checkpoint(b)
	}
	if err != nil {
		a.durErr = err
	}
}

// DurableError reports the first journaling failure, if any.
func (a *Agent) DurableError() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.durErr
}
