package transport

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cmtk/internal/obs"
	"cmtk/internal/vclock"
)

// TestReliableCountersRace hammers a pair of reliable endpoints from many
// goroutines on the real clock — concurrent Sends, the retry schedule,
// ack handling, and a scraper reading the registry the whole time.  Run
// under -race it is the regression test for the delivery counters, which
// live in the lock-free obs registry rather than under the endpoint's
// mutex.
func TestReliableCountersRace(t *testing.T) {
	reg := obs.NewRegistry()
	bus := NewBus(vclock.Real{}, 0)
	rel := NewReliable(bus, ReliableOptions{
		RetryInterval: time.Millisecond,
		Metrics:       reg,
	})

	const (
		workers = 8
		perW    = 100
	)
	var recvA, recvB atomic.Int64
	epA, err := rel.Join("A", func(Message) { recvA.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	epB, err := rel.Join("B", func(Message) { recvB.Add(1) })
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := reg.WriteText(io.Discard); err != nil {
					t.Error(err)
					return
				}
				reg.Snapshot()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			from, to := epA, "B"
			if w%2 == 1 {
				from, to = epB, "A"
			}
			for i := 0; i < perW; i++ {
				if err := from.Send(to, Message{Kind: "fire", Rule: strconv.Itoa(i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Wait for the acks as well as the deliveries: acks trail their
	// messages, and Close cuts off whatever is still in flight.
	want := int64(workers / 2 * perW)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if recvA.Load() >= want && recvB.Load() >= want &&
			reg.Snapshot().Sum("cmtk_transport_acked_total") >= float64(2*want) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	scraper.Wait()
	epA.Close()
	epB.Close()

	if recvA.Load() < want || recvB.Load() < want {
		t.Fatalf("delivered A=%d B=%d, want ≥%d each", recvA.Load(), recvB.Load(), want)
	}
	snap := reg.Snapshot()
	if got := snap.Sum("cmtk_transport_sends_total"); got != float64(2*want) {
		t.Fatalf("sends_total = %g, want %g", got, float64(2*want))
	}
	if got := snap.Sum("cmtk_transport_acked_total"); got < float64(2*want) {
		t.Fatalf("acked_total = %g, want ≥%g", got, float64(2*want))
	}
}
