// Package transport carries messages between CM-Shells.  Two base
// implementations are provided: an in-process Bus whose delivery is
// driven by the toolkit clock (deterministic under a virtual clock, with
// configurable per-link latency), and a TCP mesh built on package wire.
// Both preserve FIFO order per (sender, receiver) pair — the in-order
// delivery assumption that Appendix A.2 property 7 formalizes and that
// the Section 4.2.3 guarantee proofs were found to require.
//
// Two wrappers compose over any Network.  Reliable adds per-link
// sequencing, a bounded outbox with ack-driven retransmission and
// exponential backoff, receiver-side dedup, and in-order replay after an
// outage, earning the paper's metric-failure classification for link
// outages (Section 5).  Flaky is the fault injector: seeded message
// drop, duplication, extra delay, and directed partitions, so failure
// scenarios replay deterministically.
//
// # Observability
//
// The reliability layer and the fault injector publish counters through
// package obs (nil Metrics in their options means obs.Default).  Per
// peer link: cmtk_transport_sends_total, cmtk_transport_retries_total,
// cmtk_transport_acked_total, cmtk_transport_replayed_total,
// cmtk_transport_outbox_dropped_total{reason=overflow|gave-up},
// cmtk_transport_dups_dropped_total, cmtk_transport_reorder_held_total,
// and the cmtk_transport_outbox_depth gauge.  Flaky counts injected
// faults in cmtk_flaky_faults_total{kind=drop|duplicate|delay|partition}.
// All cells are resolved when a link first appears and updated with
// single atomic operations.  OBSERVABILITY.md catalogues the full set.
package transport
