// Flaky is the fault-injection counterpart to Scrambled: where Scrambled
// attacks ordering, Flaky attacks delivery itself.  It wraps any Network
// and, per message, may drop it, duplicate it, or delay the duplicate's
// dispatch — all driven by a seeded PRNG so a scenario's fault schedule
// is reproducible.  Directed partitions (Partition/Heal) black-hole all
// traffic on a link, modelling an outage: sends succeed from the caller's
// point of view, nothing arrives.  Together with Reliable it forms the
// E12 ablation harness — guarantees survive faults with the reliability
// layer and fail without it.

package transport

import (
	"math/rand"
	"sync"
	"time"

	"cmtk/internal/obs"
	"cmtk/internal/vclock"
)

// FlakyOptions configures the fault injector.  Probabilities are in
// [0, 1] and evaluated independently per message.
type FlakyOptions struct {
	// Clock schedules delayed duplicates; nil means real time.
	Clock vclock.Clock
	// Seed drives the fault schedule deterministically.
	Seed int64
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Delay is the probability a message's duplicate copy (or the message
	// itself, if not dropped) is deferred by DelayBy before entering the
	// underlying network.
	Delay float64
	// DelayBy is the extra latency applied to delayed messages (default
	// 50ms).
	DelayBy time.Duration
	// Metrics is the registry the injected-fault counters land in; nil
	// means obs.Default.
	Metrics *obs.Registry
}

// Flaky injects message loss, duplication, extra delay, and directed
// partitions into an inner Network.
type Flaky struct {
	inner Network
	opts  FlakyOptions
	clock vclock.Clock

	mu     sync.Mutex
	rng    *rand.Rand
	parted map[[2]string]bool // {from, to} → black-holed

	// injected-fault counters by kind
	mDrop, mDup, mDelay, mPart *obs.Counter
}

// NewFlaky wraps a network with seeded fault injection.
func NewFlaky(inner Network, opts FlakyOptions) *Flaky {
	if opts.Clock == nil {
		opts.Clock = vclock.Real{}
	}
	if opts.DelayBy <= 0 {
		opts.DelayBy = 50 * time.Millisecond
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default
	}
	faults := reg.Counter("cmtk_flaky_faults_total",
		"Faults injected by the Flaky wrapper, by kind (drop, duplicate, delay, partition).", "kind")
	return &Flaky{
		inner:  inner,
		opts:   opts,
		clock:  opts.Clock,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		parted: map[[2]string]bool{},
		mDrop:  faults.With("drop"),
		mDup:   faults.With("duplicate"),
		mDelay: faults.With("delay"),
		mPart:  faults.With("partition"),
	}
}

// Partition black-holes all traffic from one shell to another (directed:
// the reverse direction stays up unless partitioned separately).  Sends
// still return nil — the outage is silent, as on a real network.
func (f *Flaky) Partition(from, to string) {
	f.mu.Lock()
	f.parted[[2]string{from, to}] = true
	f.mu.Unlock()
}

// PartitionBoth severs both directions between two shells.
func (f *Flaky) PartitionBoth(a, b string) {
	f.Partition(a, b)
	f.Partition(b, a)
}

// SetDrop replaces the drop probability for subsequent sends.  Runtime
// mutation is what lets a fault campaign (internal/chaos) phase lossy
// links in and out mid-run; the PRNG stream is unaffected, so a campaign
// with the same seed and phase boundaries replays identically.
func (f *Flaky) SetDrop(p float64) {
	f.mu.Lock()
	f.opts.Drop = p
	f.mu.Unlock()
}

// SetDelay replaces the delay probability and the added latency for
// subsequent sends (a by of 0 keeps the current DelayBy).
func (f *Flaky) SetDelay(p float64, by time.Duration) {
	f.mu.Lock()
	f.opts.Delay = p
	if by > 0 {
		f.opts.DelayBy = by
	}
	f.mu.Unlock()
}

// SetDuplicate replaces the duplication probability for subsequent sends.
func (f *Flaky) SetDuplicate(p float64) {
	f.mu.Lock()
	f.opts.Duplicate = p
	f.mu.Unlock()
}

// Heal restores the directed link from one shell to another.
func (f *Flaky) Heal(from, to string) {
	f.mu.Lock()
	delete(f.parted, [2]string{from, to})
	f.mu.Unlock()
}

// HealAll restores every partitioned link.
func (f *Flaky) HealAll() {
	f.mu.Lock()
	f.parted = map[[2]string]bool{}
	f.mu.Unlock()
}

// Join implements Network.
func (f *Flaky) Join(shellID string, recv func(Message)) (Endpoint, error) {
	inner, err := f.inner.Join(shellID, recv)
	if err != nil {
		return nil, err
	}
	return &flakyEndpoint{f: f, from: shellID, inner: inner}, nil
}

var _ Network = (*Flaky)(nil)

type flakyEndpoint struct {
	f     *Flaky
	from  string
	inner Endpoint
}

// Send implements Endpoint, applying the fault schedule.
func (e *flakyEndpoint) Send(to string, m Message) error {
	f := e.f
	f.mu.Lock()
	if f.parted[[2]string{e.from, to}] {
		f.mu.Unlock()
		f.mPart.Inc()
		return nil // black hole: silently lost
	}
	drop := f.rng.Float64() < f.opts.Drop
	dup := f.rng.Float64() < f.opts.Duplicate
	delay := f.rng.Float64() < f.opts.Delay
	delayBy := f.opts.DelayBy
	f.mu.Unlock()
	if drop {
		f.mDrop.Inc()
	}
	if dup {
		f.mDup.Inc()
	}
	if delay {
		f.mDelay.Inc()
	}
	if drop && !dup {
		return nil
	}
	send := func() { e.inner.Send(to, m) }
	switch {
	case drop && dup:
		// The original is lost but its duplicate survives.
		if delay {
			f.clock.AfterFunc(delayBy, send)
			return nil
		}
		return e.inner.Send(to, m)
	case dup:
		if err := e.inner.Send(to, m); err != nil {
			return err
		}
		if delay {
			f.clock.AfterFunc(delayBy, send)
			return nil
		}
		return e.inner.Send(to, m)
	case delay:
		f.clock.AfterFunc(delayBy, send)
		return nil
	default:
		return e.inner.Send(to, m)
	}
}

func (e *flakyEndpoint) Close() error { return e.inner.Close() }

// Flush drains the wrapped endpoint when it supports it.
func (e *flakyEndpoint) Flush() error {
	if fl, ok := e.inner.(Flusher); ok {
		return fl.Flush()
	}
	return nil
}

var (
	_ Endpoint = (*flakyEndpoint)(nil)
	_ Flusher  = (*flakyEndpoint)(nil)
)
