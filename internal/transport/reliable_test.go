package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cmtk/internal/vclock"
)

// relPair joins two shells A and B to a network and records B's inbound
// messages in order.
type relPair struct {
	a    Endpoint
	got  *[]Message
	mu   *sync.Mutex
	evMu sync.Mutex
	evs  []LinkEvent
}

func joinPair(t *testing.T, n Network) *relPair {
	t.Helper()
	var mu sync.Mutex
	var got []Message
	p := &relPair{got: &got, mu: &mu}
	if _, err := n.Join("B", func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	a, err := n.Join("A", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	p.a = a
	if re, ok := a.(*ReliableEndpoint); ok {
		re.OnLinkEvent(func(ev LinkEvent) {
			p.evMu.Lock()
			p.evs = append(p.evs, ev)
			p.evMu.Unlock()
		})
	}
	return p
}

func (p *relPair) seqs() []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]uint64, len(*p.got))
	for i, m := range *p.got {
		out[i] = m.Trigger.Seq
	}
	return out
}

func (p *relPair) events(kind LinkEventKind) []LinkEvent {
	p.evMu.Lock()
	defer p.evMu.Unlock()
	var out []LinkEvent
	for _, ev := range p.evs {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

func wantInOrder(t *testing.T, seqs []uint64, n int) {
	t.Helper()
	if len(seqs) != n {
		t.Fatalf("delivered %d messages, want %d: %v", len(seqs), n, seqs)
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("out of order at %d: %v", i, seqs)
		}
	}
}

func fireMsg(i int) Message {
	return Message{Kind: "fire", Rule: "r", Trigger: EventRef{Seq: uint64(i)},
		Payload: map[string]string{"k": fmt.Sprint(i)}}
}

func TestReliableBasicDelivery(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	rel := NewReliable(NewBus(clk, 10*time.Millisecond),
		ReliableOptions{Clock: clk, RetryInterval: time.Second})
	p := joinPair(t, rel)
	for i := 0; i < 5; i++ {
		if err := p.a.Send("B", fireMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second)
	wantInOrder(t, p.seqs(), 5)
	// The sequencing metadata is stripped before delivery, user payload kept.
	p.mu.Lock()
	for i, m := range *p.got {
		if _, ok := m.Payload[relSeqKey]; ok {
			t.Fatalf("rel.seq leaked to receiver: %v", m.Payload)
		}
		if m.Payload["k"] != fmt.Sprint(i) {
			t.Fatalf("payload lost: %v", m.Payload)
		}
	}
	p.mu.Unlock()
	// Acks flowed back and retired the outbox.
	if n := p.a.(*ReliableEndpoint).Pending("B"); n != 0 {
		t.Fatalf("outbox still holds %d after acks", n)
	}
	if evs := p.events(LinkRetry); len(evs) != 0 {
		t.Fatalf("unexpected retries on a clean link: %v", evs)
	}
}

func TestReliableRetransmitsThroughDrops(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	flaky := NewFlaky(NewBus(clk, 10*time.Millisecond),
		FlakyOptions{Clock: clk, Seed: 7, Drop: 0.4})
	rel := NewReliable(flaky, ReliableOptions{Clock: clk, RetryInterval: 100 * time.Millisecond, Seed: 7})
	p := joinPair(t, rel)
	const n = 40
	for i := 0; i < n; i++ {
		if err := p.a.Send("B", fireMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Minute)
	wantInOrder(t, p.seqs(), n)
	if n := p.a.(*ReliableEndpoint).Pending("B"); n != 0 {
		t.Fatalf("outbox still holds %d", n)
	}
	// The drop pattern and backoff jitter are both seeded and the clock is
	// virtual, so the retransmission schedule is bit-reproducible: the run
	// performs exactly this many retry rounds (each a LinkRetry event), and
	// the retries recover every dropped copy.
	if evs := p.events(LinkRetry); len(evs) != 4 {
		t.Fatalf("retry rounds = %d, want exactly 4", len(evs))
	}
}

func TestReliableDedupsDuplicates(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	flaky := NewFlaky(NewBus(clk, 10*time.Millisecond),
		FlakyOptions{Clock: clk, Seed: 3, Duplicate: 1.0})
	rel := NewReliable(flaky, ReliableOptions{Clock: clk, RetryInterval: 100 * time.Millisecond})
	p := joinPair(t, rel)
	const n = 20
	for i := 0; i < n; i++ {
		p.a.Send("B", fireMsg(i))
	}
	clk.Advance(10 * time.Second)
	// Every copy crossed the link twice; the receiver saw each effect once.
	wantInOrder(t, p.seqs(), n)
}

func TestReliableReordersDelayedCopies(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	// Half the messages take an extra 200ms — far more than the 10ms base
	// latency — so raw arrival order is scrambled; the reorder buffer must
	// restore send order.
	flaky := NewFlaky(NewBus(clk, 10*time.Millisecond),
		FlakyOptions{Clock: clk, Seed: 11, Delay: 0.5, DelayBy: 200 * time.Millisecond})
	rel := NewReliable(flaky, ReliableOptions{Clock: clk, RetryInterval: 5 * time.Second})
	p := joinPair(t, rel)
	const n = 30
	for i := 0; i < n; i++ {
		p.a.Send("B", fireMsg(i))
	}
	clk.Advance(time.Minute)
	wantInOrder(t, p.seqs(), n)
}

func TestReliablePartitionHealOrderedReplay(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	flaky := NewFlaky(NewBus(clk, 10*time.Millisecond), FlakyOptions{Clock: clk})
	rel := NewReliable(flaky, ReliableOptions{
		Clock: clk, RetryInterval: 100 * time.Millisecond,
		MaxBackoff: 400 * time.Millisecond, FailThreshold: 2,
	})
	p := joinPair(t, rel)
	p.a.Send("B", fireMsg(0))
	clk.Advance(time.Second)
	wantInOrder(t, p.seqs(), 1)

	flaky.PartitionBoth("A", "B")
	for i := 1; i < 6; i++ {
		p.a.Send("B", fireMsg(i))
	}
	clk.Advance(5 * time.Second)
	wantInOrder(t, p.seqs(), 1) // nothing crossed the partition
	if evs := p.events(LinkDegraded); len(evs) != 1 {
		t.Fatalf("degraded events = %v", evs)
	} else if ev := evs[0]; ev.Peer != "B" || ev.Messages != 5 || ev.Fires != 5 {
		// All five partitioned sends are rule firings and all were queued
		// by the time the fail threshold tripped.
		t.Fatalf("degraded event = %+v, want 5 messages / 5 fires for B", ev)
	}
	re := p.a.(*ReliableEndpoint)
	if n := re.Pending("B"); n != 5 {
		t.Fatalf("outbox holds %d during outage, want 5", n)
	}

	flaky.HealAll()
	clk.Advance(5 * time.Second)
	wantInOrder(t, p.seqs(), 6) // replayed in order, no duplicates
	if n := re.Pending("B"); n != 0 {
		t.Fatalf("outbox holds %d after heal", n)
	}
	recov := p.events(LinkRecovered)
	if len(recov) != 1 || recov[0].Messages != 5 {
		t.Fatalf("recovered events = %v", recov)
	}
}

func TestReliableOutboxOverflow(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	flaky := NewFlaky(NewBus(clk, 10*time.Millisecond), FlakyOptions{Clock: clk})
	rel := NewReliable(flaky, ReliableOptions{
		Clock: clk, RetryInterval: 100 * time.Millisecond, OutboxLimit: 3,
	})
	p := joinPair(t, rel)
	flaky.PartitionBoth("A", "B")
	for i := 0; i < 5; i++ {
		if err := p.a.Send("B", fireMsg(i)); err != nil {
			t.Fatal(err) // overflow surfaces as an event, not an error
		}
	}
	if evs := p.events(LinkOverflow); len(evs) != 2 {
		t.Fatalf("overflow events = %v", evs)
	}
	// The three buffered messages still replay after heal.
	flaky.HealAll()
	clk.Advance(5 * time.Second)
	wantInOrder(t, p.seqs(), 3)
}

func TestReliableRetryBudgetExhaustion(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	flaky := NewFlaky(NewBus(clk, 10*time.Millisecond), FlakyOptions{Clock: clk})
	rel := NewReliable(flaky, ReliableOptions{
		Clock: clk, RetryInterval: 100 * time.Millisecond,
		MaxBackoff: 100 * time.Millisecond, RetryBudget: 4,
	})
	p := joinPair(t, rel)
	flaky.PartitionBoth("A", "B")
	p.a.Send("B", fireMsg(0))
	clk.Advance(time.Minute)
	gave := p.events(LinkGaveUp)
	if len(gave) != 1 || gave[0].Messages != 1 || gave[0].Fires != 1 {
		t.Fatalf("gave-up events = %v", gave)
	}
	if n := p.a.(*ReliableEndpoint).Pending("B"); n != 0 {
		t.Fatalf("outbox holds %d after giving up", n)
	}
}

func TestReliablePassThroughForUnsequencedPeers(t *testing.T) {
	// A shell without the reliability layer can still talk to one with it.
	clk := vclock.NewVirtual(vclock.Epoch)
	bus := NewBus(clk, 10*time.Millisecond)
	var mu sync.Mutex
	var got []Message
	re := NewReliableEndpoint(func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}, ReliableOptions{Clock: clk})
	inner, err := bus.Join("B", re.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	re.Bind(inner)
	rawA, err := bus.Join("A", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	rawA.Send("B", Message{Kind: "fire", Rule: "raw"})
	clk.Advance(time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Rule != "raw" {
		t.Fatalf("got = %v", got)
	}
}

func TestFlakyPartitionWithoutReliabilityLosesMessages(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	flaky := NewFlaky(NewBus(clk, 10*time.Millisecond), FlakyOptions{Clock: clk})
	p := joinPair(t, flaky)
	flaky.Partition("A", "B")
	// The outage is silent: sends succeed, nothing arrives — even after heal.
	if err := p.a.Send("B", fireMsg(0)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	flaky.Heal("A", "B")
	clk.Advance(time.Second)
	if n := len(p.seqs()); n != 0 {
		t.Fatalf("raw link delivered %d messages across a partition", n)
	}
	p.a.Send("B", fireMsg(1))
	clk.Advance(time.Second)
	if seqs := p.seqs(); len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("after heal got %v", seqs)
	}
}

// TestReliableTCPCrashRecovery crashes the receiving TCP endpoint
// mid-stream and rebinds a fresh one into the same ReliableEndpoint: the
// sender's outbox replays across the outage and the receiver's dedup
// state guarantees exactly-once effect, in order.
func TestReliableTCPCrashRecovery(t *testing.T) {
	var mu sync.Mutex
	var got []Message
	relB := NewReliableEndpoint(func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}, ReliableOptions{RetryInterval: 20 * time.Millisecond})
	defer relB.Close()
	tcpB, err := NewTCP("B", "127.0.0.1:0", nil, relB.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	bAddr := tcpB.Addr()

	relA := NewReliableEndpoint(func(Message) {}, ReliableOptions{RetryInterval: 20 * time.Millisecond})
	defer relA.Close()
	tcpA, err := NewTCP("A", "127.0.0.1:0", map[string]string{"B": bAddr}, relA.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	relA.Bind(tcpA)
	relB.Bind(tcpB)
	// B needs A's address for acks.
	tcpB.addrs = map[string]string{"A": tcpA.Addr()}

	waitFor := func(n int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			mu.Lock()
			have := len(got)
			mu.Unlock()
			if have >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("only %d of %d messages arrived", have, n)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	for i := 0; i < 5; i++ {
		if err := relA.Send("B", fireMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(5)

	// Crash B's transport mid-stream; the reliable state survives.
	tcpB.Close()
	for i := 5; i < 10; i++ {
		if err := relA.Send("B", fireMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let retries fail against the dead port

	// B restarts on the same address with the same reliable endpoint.
	tcpB2, err := NewTCP("B", bAddr, map[string]string{"A": tcpA.Addr()}, relB.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer tcpB2.Close()
	relB.Bind(tcpB2)

	waitFor(10)
	// Exactly once, in order — retransmitted copies were deduplicated.
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 10 {
		t.Fatalf("delivered %d messages, want exactly 10", len(got))
	}
	for i, m := range got {
		if m.Trigger.Seq != uint64(i) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	// The sender's outbox drains once acks resume.
	deadline := time.Now().Add(5 * time.Second)
	mu.Unlock()
	for relA.Pending("B") != 0 {
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("outbox never drained: %d pending", relA.Pending("B"))
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
}

// A receiver process restart loses the endpoint AND its reliability state
// (dedup, expected sequence).  The outbox base stamped on retransmits
// lets the fresh receiver fast-forward past the messages its predecessor
// acked and resume the stream mid-way instead of waiting forever.
func TestReliableReceiverProcessRestartResumesStream(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	bus := NewBus(clk, 10*time.Millisecond)
	relB := NewReliableEndpoint(func(Message) {}, ReliableOptions{Clock: clk, RetryInterval: time.Second})
	epB, err := bus.Join("B", relB.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	relB.Bind(epB)
	relA := NewReliableEndpoint(func(Message) {}, ReliableOptions{Clock: clk, RetryInterval: time.Second})
	epA, err := bus.Join("A", relA.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	relA.Bind(epA)

	// Three messages delivered and acked to B's first incarnation.
	for i := 0; i < 3; i++ {
		if err := relA.Send("B", fireMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second)
	if n := relA.Pending("B"); n != 0 {
		t.Fatalf("pending before crash = %d", n)
	}

	// B's process dies: endpoint, dedup state and expected seq all gone.
	epB.Close()
	for i := 3; i < 5; i++ {
		if err := relA.Send("B", fireMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(3 * time.Second) // retries fail into the void

	// B restarts from scratch with empty link state.
	var mu sync.Mutex
	var got []Message
	relB2 := NewReliableEndpoint(func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}, ReliableOptions{Clock: clk, RetryInterval: time.Second})
	epB2, err := bus.Join("B", relB2.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	relB2.Bind(epB2)
	clk.Advance(time.Minute)

	mu.Lock()
	seqs := make([]uint64, len(got))
	for i, m := range got {
		seqs[i] = m.Trigger.Seq
	}
	mu.Unlock()
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("restarted receiver got %v, want the two outage messages [3 4]", seqs)
	}
	if n := relA.Pending("B"); n != 0 {
		t.Fatalf("outbox never drained after receiver restart: %d pending", n)
	}
}

// A sender process restart begins a fresh stream numbered from zero.  The
// incarnation epoch stamped on data messages makes the receiver reset its
// link state and accept the new numbering instead of discarding the whole
// stream as duplicates of the old one.
func TestReliableSenderProcessRestartResetsReceiver(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	bus := NewBus(clk, 10*time.Millisecond)
	var mu sync.Mutex
	var got []Message
	relB := NewReliableEndpoint(func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}, ReliableOptions{Clock: clk, RetryInterval: time.Second})
	epB, err := bus.Join("B", relB.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	relB.Bind(epB)

	relA := NewReliableEndpoint(func(Message) {}, ReliableOptions{Clock: clk, RetryInterval: time.Second})
	epA, err := bus.Join("A", relA.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	relA.Bind(epA)
	for i := 0; i < 3; i++ {
		if err := relA.Send("B", fireMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second)

	// A dies and restarts strictly later: a higher incarnation epoch.
	epA.Close()
	clk.Advance(time.Second)
	relA2 := NewReliableEndpoint(func(Message) {}, ReliableOptions{Clock: clk, RetryInterval: time.Second})
	epA2, err := bus.Join("A", relA2.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	relA2.Bind(epA2)
	for i := 0; i < 2; i++ {
		if err := relA2.Send("B", fireMsg(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Minute)

	mu.Lock()
	seqs := make([]uint64, len(got))
	for i, m := range got {
		seqs[i] = m.Trigger.Seq
	}
	mu.Unlock()
	want := []uint64{0, 1, 2, 10, 11}
	if len(seqs) != len(want) {
		t.Fatalf("delivered %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("delivered %v, want %v", seqs, want)
		}
	}
	if n := relA2.Pending("B"); n != 0 {
		t.Fatalf("restarted sender outbox never drained: %d pending", n)
	}
}
