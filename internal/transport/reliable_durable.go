// Durable journaling for the reliability layer.  Section 5 of the paper
// classifies a crash as a mere *metric* failure only when the site "can
// remember messages that need to be sent out upon recovery"; an in-memory
// outbox forfeits that — a restart loses every buffered fire and the
// constraint guarantees break logically.  EnableJournal earns the metric
// classification for real: the sender incarnation epoch, every sequenced
// outbound message, cumulative acks, and the receiver's dedup cursor are
// written to a durable.Log before they matter, so a restarted endpoint
// resumes the same epoch and sequence numbering, replays its unacked
// outbox in order, and keeps deduplicating inbound messages where it left
// off — exactly-once effect across the crash, not just across an outage.

package transport

import (
	"encoding/json"
	"fmt"

	"cmtk/internal/durable"
)

// Journal record types (all JSON-encoded).
const (
	jSend byte = 1 // jSendRec: a message was sequenced and buffered
	jAck  byte = 2 // jAckRec: outbox entries below Ack were retired
	jIn   byte = 3 // jInRec: the receive cursor for a peer moved
	jMeta byte = 4 // jMetaRec: this endpoint's incarnation epoch
)

type jSendRec struct {
	Peer string
	Seq  uint64
	Msg  Message // with reliability stamps; TriggerEvent does not persist
}

type jAckRec struct {
	Peer string
	Ack  uint64 // cumulative: everything below is retired
}

type jInRec struct {
	Peer  string
	Epoch uint64
	Next  uint64
}

type jMetaRec struct {
	Epoch uint64
}

// jQueued is one outbox entry in a checkpoint snapshot.
type jQueued struct {
	Seq uint64
	Msg Message
}

type relOutSnap struct {
	NextSeq uint64
	Msgs    []jQueued
}

type relInSnap struct {
	Epoch uint64
	Next  uint64
}

// relSnapshot is the full link state written as a checkpoint: recovery
// starts here and replays only the journal records appended afterwards.
type relSnapshot struct {
	Epoch uint64
	Out   map[string]*relOutSnap
	In    map[string]relInSnap
}

func newRelSnapshot() relSnapshot {
	return relSnapshot{Out: map[string]*relOutSnap{}, In: map[string]relInSnap{}}
}

// applyJournal folds a recovery (checkpoint snapshot + post-checkpoint
// records) into link state.  Replay is idempotent: records carry absolute
// sequence numbers and cumulative cursors, so applying a record twice —
// or applying records already covered by the snapshot — converges to the
// same state.
func applyJournal(rec *durable.Recovery) (relSnapshot, error) {
	st := newRelSnapshot()
	if rec == nil {
		return st, nil
	}
	if rec.Snapshot != nil {
		if err := json.Unmarshal(rec.Snapshot, &st); err != nil {
			return st, fmt.Errorf("transport: decoding journal checkpoint: %w", err)
		}
		if st.Out == nil {
			st.Out = map[string]*relOutSnap{}
		}
		if st.In == nil {
			st.In = map[string]relInSnap{}
		}
	}
	for _, r := range rec.Records {
		switch r.Type {
		case jMeta:
			var m jMetaRec
			if err := json.Unmarshal(r.Data, &m); err != nil {
				return st, fmt.Errorf("transport: decoding journal meta: %w", err)
			}
			st.Epoch = m.Epoch
		case jSend:
			var s jSendRec
			if err := json.Unmarshal(r.Data, &s); err != nil {
				return st, fmt.Errorf("transport: decoding journal send: %w", err)
			}
			o := st.Out[s.Peer]
			if o == nil {
				o = &relOutSnap{}
				st.Out[s.Peer] = o
			}
			if len(o.Msgs) == 0 || o.Msgs[len(o.Msgs)-1].Seq < s.Seq {
				o.Msgs = append(o.Msgs, jQueued{Seq: s.Seq, Msg: s.Msg})
			}
			if s.Seq >= o.NextSeq {
				o.NextSeq = s.Seq + 1
			}
		case jAck:
			var a jAckRec
			if err := json.Unmarshal(r.Data, &a); err != nil {
				return st, fmt.Errorf("transport: decoding journal ack: %w", err)
			}
			if o := st.Out[a.Peer]; o != nil {
				for len(o.Msgs) > 0 && o.Msgs[0].Seq < a.Ack {
					o.Msgs = o.Msgs[1:]
				}
			}
		case jIn:
			var in jInRec
			if err := json.Unmarshal(r.Data, &in); err != nil {
				return st, fmt.Errorf("transport: decoding journal cursor: %w", err)
			}
			cur := st.In[in.Peer]
			if in.Epoch > cur.Epoch || (in.Epoch == cur.Epoch && in.Next > cur.Next) {
				st.In[in.Peer] = relInSnap{Epoch: in.Epoch, Next: in.Next}
			}
		default:
			// An unknown record type from a newer build: skip rather than
			// fail, the absolute cursors around it still converge.
		}
	}
	return st, nil
}

// EnableJournal makes the endpoint durable: link state recovered from the
// named log in the store is installed (incarnation epoch, unacked outbox
// per peer with retry timers armed, receiver dedup cursors), a fresh
// checkpoint compacts the recovered journal, and every subsequent
// Send/ack/delivery is journaled before it takes effect.  It must be
// called once, before the endpoint carries traffic, and registers a
// final-checkpoint hook with the store so a clean shutdown leaves only a
// snapshot to recover.  It returns the number of outbox messages that
// were recovered and will be replayed by the retry schedule.
func (r *ReliableEndpoint) EnableJournal(store *durable.Store, name string) (int, error) {
	lg, rec, err := store.Log(name)
	if err != nil {
		return 0, err
	}
	if rec == nil {
		return 0, fmt.Errorf("transport: journal %s already in use", name)
	}
	st, err := applyJournal(rec)
	if err != nil {
		return 0, err
	}
	replayed := 0
	r.mu.Lock()
	if r.j != nil {
		r.mu.Unlock()
		return 0, fmt.Errorf("transport: journal already enabled")
	}
	r.j = lg
	if st.Epoch != 0 {
		// Resume the previous incarnation: peers keep their dedup state, so
		// the replayed outbox deduplicates down to exactly-once effect.
		r.epoch = st.Epoch
	}
	for peer, s := range st.Out {
		o := r.outLink(peer)
		o.nextSeq = s.NextSeq
		o.q = o.q[:0]
		for _, q := range s.Msgs {
			o.q = append(o.q, relMsg{seq: q.Seq, m: q.Msg})
		}
		o.mDepth.Set(int64(len(o.q)))
		if len(o.q) > 0 {
			replayed += len(o.q)
			r.scheduleLocked(peer, o)
		}
	}
	for peer, s := range st.In {
		in := r.inLink(peer)
		in.epoch, in.next = s.Epoch, s.Next
	}
	r.journalLocked(jMeta, jMetaRec{Epoch: r.epoch})
	r.checkpointLocked()
	r.mu.Unlock()
	store.OnClose(func() error {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.checkpointLocked()
		return r.jErr
	})
	return replayed, nil
}

// inLink returns (creating if needed) the receiver half of a link.
func (r *ReliableEndpoint) inLink(from string) *relIn {
	in := r.in[from]
	if in == nil {
		in = &relIn{
			hold:  map[uint64]Message{},
			mDups: r.met.dups.With(from),
			mHeld: r.met.held.With(from),
		}
		r.in[from] = in
	}
	return in
}

// journalLocked appends one record under r.mu.  A failed append (most
// likely ErrCrashed from the harness's crash hook) latches: journaling
// stops, exactly as if the process had died — whatever reached the log is
// what the next incarnation recovers.
func (r *ReliableEndpoint) journalLocked(typ byte, v any) {
	if r.j == nil || r.jErr != nil {
		return
	}
	data, err := json.Marshal(v)
	if err == nil {
		err = r.j.Append(typ, data)
	}
	if err != nil {
		r.jErr = err
	}
}

// maybeCheckpointLocked compacts the journal once it outgrows the
// configured threshold.
func (r *ReliableEndpoint) maybeCheckpointLocked() {
	if r.j == nil || r.jErr != nil || r.j.WALSize() < r.opts.CheckpointBytes {
		return
	}
	r.checkpointLocked()
}

// checkpointLocked snapshots the full link state and truncates the
// journal.
func (r *ReliableEndpoint) checkpointLocked() {
	if r.j == nil || r.jErr != nil {
		return
	}
	st := newRelSnapshot()
	st.Epoch = r.epoch
	for peer, o := range r.out {
		s := &relOutSnap{NextSeq: o.nextSeq}
		for _, e := range o.q {
			s.Msgs = append(s.Msgs, jQueued{Seq: e.seq, Msg: e.m})
		}
		st.Out[peer] = s
	}
	for peer, in := range r.in {
		st.In[peer] = relInSnap{Epoch: in.epoch, Next: in.next}
	}
	data, err := json.Marshal(st)
	if err == nil {
		err = r.j.Checkpoint(data)
	}
	if err != nil {
		r.jErr = err
	}
}

// JournalError reports the first journaling failure, if any (nil while
// the journal is healthy or disabled).
func (r *ReliableEndpoint) JournalError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jErr
}

// OutSummary describes one journaled send link.
type OutSummary struct {
	NextSeq uint64 // next sequence number to assign
	Pending int    // unacked messages buffered for replay
	Fires   int    // how many of Pending are rule firings
}

// InSummary describes one journaled receive link.
type InSummary struct {
	Epoch uint64 // sender incarnation last seen
	Next  uint64 // next expected sequence number
}

// JournalSummary is the decoded state of a reliability journal, for
// inspection tooling (cmctl state).
type JournalSummary struct {
	Epoch uint64
	Out   map[string]OutSummary
	In    map[string]InSummary
}

// SummarizeJournal decodes a reliability journal recovered read-only from
// a state directory (durable.ReadLog) without constructing an endpoint.
func SummarizeJournal(rec *durable.Recovery) (JournalSummary, error) {
	st, err := applyJournal(rec)
	sum := JournalSummary{
		Epoch: st.Epoch,
		Out:   map[string]OutSummary{},
		In:    map[string]InSummary{},
	}
	if err != nil {
		return sum, err
	}
	for peer, o := range st.Out {
		s := OutSummary{NextSeq: o.NextSeq, Pending: len(o.Msgs)}
		for _, q := range o.Msgs {
			if q.Msg.Kind == "fire" {
				s.Fires++
			}
		}
		sum.Out[peer] = s
	}
	for peer, in := range st.In {
		sum.In[peer] = InSummary{Epoch: in.Epoch, Next: in.Next}
	}
	return sum, nil
}
