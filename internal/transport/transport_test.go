package transport

import (
	"sync"
	"testing"
	"time"

	"cmtk/internal/vclock"
)

func TestBusDeliveryAndLatency(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	bus := NewBus(clk, 2*time.Second)
	var got []Message
	var when []time.Time
	_, err := bus.Join("B", func(m Message) {
		got = append(got, m)
		when = append(when, clk.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := bus.Join("A", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("B", Message{Kind: "fire", Rule: "r1"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if len(got) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	clk.Advance(time.Second)
	if len(got) != 1 || got[0].Rule != "r1" || got[0].From != "A" || got[0].To != "B" {
		t.Fatalf("got = %v", got)
	}
	if !when[0].Equal(vclock.Epoch.Add(2 * time.Second)) {
		t.Fatalf("delivered at %v", when[0])
	}
}

func TestBusFIFOUnderVaryingLatency(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	bus := NewBus(clk, 5*time.Second)
	var order []string
	bus.Join("B", func(m Message) { order = append(order, m.Rule) })
	a, _ := bus.Join("A", nil)
	a.Send("B", Message{Rule: "first"}) // due at t=5
	bus.SetLatency(time.Second)
	a.Send("B", Message{Rule: "second"}) // naively due at t=1; FIFO forces t=5
	clk.Advance(10 * time.Second)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v", order)
	}
}

func TestBusErrors(t *testing.T) {
	bus := NewBus(vclock.NewVirtual(vclock.Epoch), 0)
	a, _ := bus.Join("A", nil)
	if err := a.Send("nobody", Message{}); err == nil {
		t.Fatal("send to unknown shell succeeded")
	}
	if _, err := bus.Join("A", nil); err == nil {
		t.Fatal("duplicate join succeeded")
	}
	a.Close()
	if err := a.Send("A", Message{}); err == nil {
		t.Fatal("send on closed endpoint succeeded")
	}
	// Messages in flight to a closed endpoint are dropped, not delivered.
	clk := vclock.NewVirtual(vclock.Epoch)
	bus2 := NewBus(clk, time.Second)
	delivered := 0
	b, _ := bus2.Join("B", func(Message) { delivered++ })
	a2, _ := bus2.Join("A", nil)
	a2.Send("B", Message{})
	b.Close()
	clk.Advance(2 * time.Second)
	if delivered != 0 {
		t.Fatal("delivered to closed endpoint")
	}
}

func TestTCPMesh(t *testing.T) {
	var mu sync.Mutex
	var got []Message
	recvB := func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}
	b, err := NewTCP("B", "127.0.0.1:0", nil, recvB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addrs := map[string]string{"B": b.Addr()}
	a, err := NewTCP("A", "127.0.0.1:0", addrs, func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 10; i++ {
		m := Message{Kind: "fire", Rule: "r", Bindings: map[string]string{"n": "1"},
			Trigger: EventRef{Site: "A", Seq: uint64(i), Desc: "N(X, 1)"}}
		if err := a.Send("B", m); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d messages arrived", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, m := range got {
		if m.Trigger.Seq != uint64(i) {
			t.Fatalf("out of order: %v", got)
		}
		if m.From != "A" || m.To != "B" {
			t.Fatalf("routing fields: %+v", m)
		}
	}
}

// TestTCPBatchingFIFO bursts messages at a deliberately slow receiver so
// the flusher coalesces queued messages into multi-message frames, and
// checks that per-link FIFO order (Appendix A.2 property 7) survives the
// batching.
func TestTCPBatchingFIFO(t *testing.T) {
	const n = 200
	var mu sync.Mutex
	var got []Message
	recvB := func(m Message) {
		time.Sleep(100 * time.Microsecond) // stall so send outpaces delivery
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}
	b, err := NewTCP("B", "127.0.0.1:0", nil, recvB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := NewTCP("A", "127.0.0.1:0", map[string]string{"B": b.Addr()}, func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	before := a.mBatch.Count()
	for i := 0; i < n; i++ {
		if err := a.Send("B", Message{Kind: "fire", Trigger: EventRef{Seq: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		cnt := len(got)
		mu.Unlock()
		if cnt == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d messages arrived", cnt, n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, m := range got {
		if m.Trigger.Seq != uint64(i) {
			t.Fatalf("FIFO violated at %d: seq %d", i, m.Trigger.Seq)
		}
	}
	frames := a.mBatch.Count() - before
	if frames == 0 || frames >= n {
		t.Fatalf("expected coalescing: %d messages went out in %d frames", n, frames)
	}
	t.Logf("%d messages coalesced into %d frames", n, frames)
}

func TestTCPSendErrors(t *testing.T) {
	a, err := NewTCP("A", "127.0.0.1:0", map[string]string{"B": "127.0.0.1:1"}, func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var mu sync.Mutex
	var events []LinkEvent
	a.OnLinkEvent(func(ev LinkEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	if err := a.Send("unknown", Message{}); err == nil {
		t.Fatal("send to unrouted shell succeeded")
	}
	// A dead address is a delivery failure, not a routing failure: Send
	// enqueues and the flusher reports the lost frame as a link event.
	if err := a.Send("B", Message{Kind: "fire"}); err != nil {
		t.Fatalf("send to dead address should enqueue: %v", err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(events) != 1 || events[0].Kind != LinkGaveUp || events[0].Peer != "B" ||
		events[0].Messages != 1 || events[0].Fires != 1 || events[0].Err == nil {
		t.Fatalf("expected one LinkGaveUp for B, got %+v", events)
	}
	mu.Unlock()
	a.Close()
	if err := a.Send("B", Message{}); err == nil {
		t.Fatal("send after close succeeded")
	}
}

func TestTCPNetwork(t *testing.T) {
	net := NewTCPNetwork()
	var mu sync.Mutex
	var got []Message
	epB, err := net.Join("B", func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	epA, err := net.Join("A", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	// Duplicate joins are rejected.
	if _, err := net.Join("A", func(Message) {}); err == nil {
		t.Fatal("duplicate join succeeded")
	}
	if err := epA.Send("B", Message{Kind: "fire", Rule: "r"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("message never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Unknown destination fails.
	if err := epA.Send("nobody", Message{}); err == nil {
		t.Fatal("send to unjoined shell succeeded")
	}
}

func TestBusZeroLatencyRealClockFIFO(t *testing.T) {
	// On the real clock, equal-deadline timers race; per-pair queues must
	// still deliver in send order.
	bus := NewBus(nil, 0) // nil clock = real
	var mu sync.Mutex
	var got []uint64
	done := make(chan struct{})
	bus.Join("B", func(m Message) {
		mu.Lock()
		got = append(got, m.Trigger.Seq)
		if len(got) == 200 {
			close(done)
		}
		mu.Unlock()
	})
	a, _ := bus.Join("A", nil)
	for i := 0; i < 200; i++ {
		if err := a.Send("B", Message{Trigger: EventRef{Seq: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("messages never all arrived")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestScrambledSwapsPairs(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	net := NewScrambled(NewBus(clk, 0))
	var got []uint64
	net.Join("B", func(m Message) { got = append(got, m.Trigger.Seq) })
	a, err := net.Join("A", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a.Send("B", Message{Trigger: EventRef{Seq: uint64(i)}})
	}
	if f, ok := a.(Flusher); ok {
		f.Flush()
	}
	clk.Advance(time.Second)
	want := []uint64{1, 0, 3, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("got = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got = %v, want %v", got, want)
		}
	}
	a.Close()
}
