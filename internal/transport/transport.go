package transport

import (
	"fmt"
	"sync"
	"time"

	"cmtk/internal/event"
	"cmtk/internal/vclock"
)

// Message is one inter-shell message.
type Message struct {
	Kind string // "fire" or "failure"
	From string // sending shell ID
	To   string // receiving shell ID

	// Epoch is the sender's fleet route-table epoch at send time (0 in
	// static deployments).  A receiver holding a newer table treats the
	// message as the in-flight tail of a rebalance: still valid, but
	// forwarded to the current owner if ownership moved (package fleet).
	Epoch uint64 `json:",omitempty"`

	// fire: execute the RHS of Rule under Bindings; Trigger identifies the
	// LHS event.
	Rule     string
	Bindings map[string]string // parameter -> literal encoding
	Trigger  EventRef

	// BindingsVal is the in-process fast path for Bindings: senders on an
	// in-memory network hand over the bound values directly and receivers
	// take ownership, skipping the encode/decode round trip entirely.  A
	// serializing boundary (TCP, the durable reliable journal) calls
	// WireReady first, which folds BindingsVal into Bindings; when both are
	// set, Bindings wins.
	BindingsVal event.Bindings `json:"-"`

	// failure: a site's interface failed.
	FailSite string
	FailKind string // "metric" or "logical"
	FailOp   string
	FailErr  string

	// Payload carries fields for custom message kinds (programmatic
	// strategy components such as the Demarcation Protocol).
	Payload map[string]string

	// TriggerEvent carries the full trigger event in-process so traces can
	// chain provenance; it does not cross the network (TCP receivers
	// reconstruct a stub from Trigger).
	TriggerEvent *event.Event `json:"-"`
}

// WireReady materializes the wire form of the in-process-only fields:
// BindingsVal is encoded into Bindings and the trigger descriptor is
// rendered from TriggerEvent when the sender left it blank.  Serializing
// transports call this before a message leaves the process or lands on
// disk; in-memory networks skip it so the hot path never pays for string
// encoding.
func (m *Message) WireReady() {
	if m.BindingsVal != nil {
		if m.Bindings == nil {
			m.Bindings = make(map[string]string, len(m.BindingsVal))
			for k, v := range m.BindingsVal {
				m.Bindings[k] = v.String()
			}
		}
		m.BindingsVal = nil
	}
	if m.TriggerEvent != nil && m.Trigger.Desc == "" {
		m.Trigger.Desc = m.TriggerEvent.Desc.String()
	}
}

// EventRef is the serializable identity of an event.
type EventRef struct {
	Site string
	Seq  uint64
	Time time.Time
	Desc string // ground descriptor in rule syntax, e.g. N(salary1("e7"), 100)
}

// Endpoint is one shell's connection to the mesh.
type Endpoint interface {
	// Send delivers m to the named shell.  Delivery is asynchronous and
	// FIFO per destination.
	Send(to string, m Message) error
	// Close detaches the endpoint.
	Close() error
}

// Network joins shells to a mesh.
type Network interface {
	// Join registers a shell; recv is invoked for each delivered message,
	// serially per endpoint, in FIFO-per-sender order.
	Join(shellID string, recv func(Message)) (Endpoint, error)
}

// Bus is the in-process Network.  Latency models the network: each
// message is delivered Latency after it is sent, on the bus clock, and
// links stay FIFO even if latency changes between sends.
type Bus struct {
	clock   vclock.Clock
	latency time.Duration
	mu      sync.Mutex
	members map[string]*busEndpoint
	// lastDue enforces FIFO per (from,to) pair under varying latency.
	lastDue map[[2]string]time.Time
	// queues holds in-flight messages per (from,to) pair; each delivery
	// timer pops the head, so arrival order equals send order even when
	// equal-deadline timers race on the real clock.
	queues map[[2]string]*pairQueue
}

// pairQueue buffers one link's in-flight messages.  head indexes the next
// undelivered message so pops reuse the slice's capacity instead of
// reslicing it away; deliver is bound once per link so scheduling a
// delivery does not allocate a fresh closure per send.
type pairQueue struct {
	mu      sync.Mutex
	msgs    []Message
	head    int
	deliver func()
}

// pop removes and returns the oldest queued message.
func (q *pairQueue) pop() (Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.msgs) {
		return Message{}, false
	}
	m := q.msgs[q.head]
	q.msgs[q.head] = Message{} // release references held by the slot
	q.head++
	if q.head == len(q.msgs) {
		q.msgs, q.head = q.msgs[:0], 0
	}
	return m, true
}

// NewBus creates a bus on the given clock with the given link latency.
func NewBus(clock vclock.Clock, latency time.Duration) *Bus {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &Bus{
		clock:   clock,
		latency: latency,
		members: map[string]*busEndpoint{},
		lastDue: map[[2]string]time.Time{},
		queues:  map[[2]string]*pairQueue{},
	}
}

// SetLatency changes the link latency for subsequent sends.
func (b *Bus) SetLatency(d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.latency = d
}

// Join implements Network.
func (b *Bus) Join(shellID string, recv func(Message)) (Endpoint, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.members[shellID]; dup {
		return nil, fmt.Errorf("transport: shell %s already joined", shellID)
	}
	ep := &busEndpoint{bus: b, id: shellID, recv: recv}
	b.members[shellID] = ep
	return ep, nil
}

type busEndpoint struct {
	bus  *Bus
	id   string
	recv func(Message)
	mu   sync.Mutex
	dead bool
}

// Send implements Endpoint.
func (e *busEndpoint) Send(to string, m Message) error {
	e.mu.Lock()
	if e.dead {
		e.mu.Unlock()
		return fmt.Errorf("transport: endpoint %s closed", e.id)
	}
	e.mu.Unlock()
	b := e.bus
	b.mu.Lock()
	if _, ok := b.members[to]; !ok {
		b.mu.Unlock()
		return fmt.Errorf("transport: no shell %s on bus", to)
	}
	m.From, m.To = e.id, to
	key := [2]string{e.id, to}
	due := b.clock.Now().Add(b.latency)
	if last, ok := b.lastDue[key]; ok && due.Before(last) {
		due = last // FIFO: never deliver before an earlier message
	}
	b.lastDue[key] = due
	q := b.queues[key]
	if q == nil {
		q = &pairQueue{}
		q.deliver = func() {
			head, ok := q.pop()
			if !ok {
				return
			}
			// Resolve the destination at delivery time: the endpoint may
			// have closed (and a namesake rejoined) since the send.
			b.mu.Lock()
			dst := b.members[head.To]
			b.mu.Unlock()
			if dst == nil {
				return
			}
			dst.mu.Lock()
			dead := dst.dead
			dst.mu.Unlock()
			if !dead {
				dst.recv(head)
			}
		}
		b.queues[key] = q
	}
	delay := due.Sub(b.clock.Now())
	b.mu.Unlock()
	q.mu.Lock()
	q.msgs = append(q.msgs, m)
	q.mu.Unlock()
	b.clock.AfterFunc(delay, q.deliver)
	return nil
}

// Close implements Endpoint.
func (e *busEndpoint) Close() error {
	e.mu.Lock()
	e.dead = true
	e.mu.Unlock()
	e.bus.mu.Lock()
	delete(e.bus.members, e.id)
	e.bus.mu.Unlock()
	return nil
}

// Scrambled wraps a Network and swaps every consecutive pair of messages
// on each (sender, receiver) link.  It deliberately violates the FIFO
// delivery assumption of Appendix A.2 property 7 — the ablation that
// shows why the paper's guarantee proofs "discovered ... a requirement
// for in-order message processing" (Section 4.2.3).
type Scrambled struct {
	inner Network
}

// NewScrambled wraps a network with pair-swapping links.
func NewScrambled(inner Network) *Scrambled { return &Scrambled{inner: inner} }

// Join implements Network.
func (s *Scrambled) Join(shellID string, recv func(Message)) (Endpoint, error) {
	ep, err := s.inner.Join(shellID, recv)
	if err != nil {
		return nil, err
	}
	return &scrambledEndpoint{inner: ep, held: map[string]*Message{}}, nil
}

type scrambledEndpoint struct {
	inner Endpoint
	mu    sync.Mutex
	held  map[string]*Message
}

// Send implements Endpoint: the first message of each pair is held back
// and sent after the second, inverting their order on the wire.
func (e *scrambledEndpoint) Send(to string, m Message) error {
	e.mu.Lock()
	first := e.held[to]
	if first == nil {
		mc := m
		e.held[to] = &mc
		e.mu.Unlock()
		return nil
	}
	delete(e.held, to)
	e.mu.Unlock()
	if err := e.inner.Send(to, m); err != nil {
		return err
	}
	return e.inner.Send(to, *first)
}

// Flush releases any held unpaired messages (call at the end of a
// scenario so odd final messages still arrive).
func (e *scrambledEndpoint) Flush() error {
	e.mu.Lock()
	held := e.held
	e.held = map[string]*Message{}
	e.mu.Unlock()
	for to, m := range held {
		if err := e.inner.Send(to, *m); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Endpoint.
func (e *scrambledEndpoint) Close() error {
	e.Flush()
	return e.inner.Close()
}

// Flusher is implemented by endpoints that buffer messages.
type Flusher interface{ Flush() error }

var (
	_ Network  = (*Scrambled)(nil)
	_ Endpoint = (*scrambledEndpoint)(nil)
	_ Flusher  = (*scrambledEndpoint)(nil)
)
