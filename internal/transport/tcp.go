package transport

import (
	"encoding/json"
	"fmt"
	"sync"

	"cmtk/internal/obs"
	"cmtk/internal/wire"
)

// TCP is a mesh endpoint over real sockets.  Each shell listens on its
// own address and dials peers lazily, keeping one connection per peer.
// Inbound frames are acknowledged at the wire layer immediately and
// handed to a per-sender FIFO worker, so links stay ordered per (sender,
// receiver) pair like the in-process Bus while the receive callback never
// blocks the wire reply.  The decoupling matters: a handler that sends
// back to its peer while still inside the inbound frame (an ack arriving
// mid-request, a recovery broadcast) would otherwise form a cycle of
// requests each awaiting a reply the other side can only produce after
// its own nested send completes — a distributed deadlock broken only by
// request timeouts.
//
// Sends are batched: Send enqueues on a per-peer outbox and one flusher
// goroutine per peer coalesces everything queued while the previous
// round-trip was in flight into a single wire frame (flush-on-idle: under
// light load each frame carries one message and latency is one
// round-trip; under load the batch grows to amortize the round-trip
// without adding any timer delay).  Per-link FIFO order — the Appendix
// A.2 property-7 delivery assumption — is preserved end to end: the
// single flusher drains the outbox in send order, frames are serialized
// one round-trip at a time, and the receiver unpacks each frame in order
// into the per-sender inbox.  Send therefore only reports synchronous
// routing problems; delivery failures surface as LinkEvents through
// OnLinkEvent (on a raw TCP endpoint a failed frame means its messages
// are lost for good — LinkGaveUp — while reliable.go layered on top
// retransmits until acked).
type TCP struct {
	shellID  string
	addrs    map[string]string           // shellID -> address
	resolve  func(string) (string, bool) // dynamic lookup when addrs is nil
	recv     func(Message)
	dialOpts []wire.DialOption
	srv      *wire.Server
	done     chan struct{}
	mu       sync.Mutex
	peers    map[string]*wire.Client
	inbox    map[string]chan Message // per-sender serial delivery queues
	closed   bool

	outMu   sync.Mutex
	outCond *sync.Cond // signalled when an outbox drains (Flush waits on it)
	outbox  map[string]*tcpOut
	// outboxLimit caps each peer's pending slice; 0 means unbounded (the
	// pre-overload-protection behavior).  Overflow drops the NEWEST message
	// — never a queued one, so per-link FIFO order of what does ship is
	// untouched — with a LinkOverflow event and a drop-counter increment.
	outboxLimit int
	linkFns     []func(LinkEvent)
	mBatch      *obs.Histogram
	mDropped    *obs.Counter
}

// tcpOut is one peer's send-side batch queue.
type tcpOut struct {
	addr    string
	pending []Message
	running bool // a flusher goroutine owns this outbox
}

// tcpBatchBuckets sizes the cmtk_transport_batch_size histogram: batch
// sizes are small integers, not durations.
var tcpBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// NewTCP starts a TCP endpoint for shellID listening on listenAddr.
// addrs maps every peer shell ID to its address (the routing table
// established "during initialization", Section 4.1).  recv is invoked for
// each inbound message.  dialOpts tune the peer connections (timeouts).
func NewTCP(shellID, listenAddr string, addrs map[string]string, recv func(Message), dialOpts ...wire.DialOption) (*TCP, error) {
	t := &TCP{
		shellID:  shellID,
		addrs:    addrs,
		recv:     recv,
		dialOpts: dialOpts,
		done:     make(chan struct{}),
		peers:    map[string]*wire.Client{},
		inbox:    map[string]chan Message{},
		outbox:   map[string]*tcpOut{},
		mBatch: obs.Default.Histogram("cmtk_transport_batch_size",
			"Messages coalesced into one wire frame by the TCP send-side batcher.",
			tcpBatchBuckets, "shell").With(shellID),
		mDropped: BufferDropCounter(obs.Default, shellID, "tcp-outbox"),
	}
	t.outCond = sync.NewCond(&t.outMu)
	srv, err := wire.Serve(listenAddr, tcpHandler{t})
	if err != nil {
		return nil, err
	}
	t.srv = srv
	return t, nil
}

// Addr returns the listening address.
func (t *TCP) Addr() string { return t.srv.Addr() }

// SetOutboxLimit caps each peer's send-side batch queue at n messages
// (0 restores unbounded).  Call before traffic for deterministic counts;
// runtime changes only affect subsequent sends.
func (t *TCP) SetOutboxLimit(n int) {
	t.outMu.Lock()
	t.outboxLimit = n
	t.outMu.Unlock()
}

// BufferDropCounter resolves the shared bounded-buffer drop counter: one
// family, cmtk_transport_buffer_dropped_total, labelled by owning shell
// and which buffer overflowed (tcp-outbox, reorder-hold).
func BufferDropCounter(reg *obs.Registry, shellID, buffer string) *obs.Counter {
	if reg == nil {
		reg = obs.Default
	}
	return reg.Counter("cmtk_transport_buffer_dropped_total",
		"Messages dropped because a bounded transport buffer was at its cap, by buffer.",
		"shell", "buffer").With(shellID, buffer)
}

type tcpHandler struct{ t *TCP }

func (h tcpHandler) NewSession(func(wire.Message) error) (wire.Session, error) {
	return tcpSession{h.t}, nil
}

type tcpSession struct{ t *TCP }

func (s tcpSession) Handle(m wire.Message) wire.Message {
	switch m.Type {
	case "shellmsg":
		var msg Message
		if err := json.Unmarshal([]byte(m.Field("m")), &msg); err != nil {
			return wire.ErrorReply(m, fmt.Errorf("transport: bad message: %w", err))
		}
		s.t.deliver(msg)
	case "shellmsgb":
		// A batched frame: the sender's flusher coalesced consecutive
		// messages for us into one round-trip.  Unpacking in slice order
		// into the per-sender FIFO inbox keeps property-7 delivery order.
		var msgs []Message
		if err := json.Unmarshal([]byte(m.Field("m")), &msgs); err != nil {
			return wire.ErrorReply(m, fmt.Errorf("transport: bad batch: %w", err))
		}
		for _, msg := range msgs {
			s.t.deliver(msg)
		}
	default:
		return wire.ErrorReply(m, fmt.Errorf("transport: unknown request %q", m.Type))
	}
	return wire.Reply(m)
}

func (tcpSession) Close() {}

// deliver queues an inbound message on its sender's FIFO worker.  The
// queue is keyed by sender shell ID, not connection, so order holds even
// across a peer's reconnects.
func (t *TCP) deliver(m Message) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	q, ok := t.inbox[m.From]
	if !ok {
		q = make(chan Message, 1024)
		t.inbox[m.From] = q
		go t.drain(q)
	}
	t.mu.Unlock()
	select {
	case q <- m: // backpressure: a full queue blocks this sender's frames
	case <-t.done:
	}
}

func (t *TCP) drain(q chan Message) {
	for {
		select {
		case m := <-q:
			t.recv(m)
		case <-t.done:
			return
		}
	}
}

// OnLinkEvent registers a link-health observer.  The batching sender
// reports delivery failures here (Send itself only fails on routing
// problems): a frame that could not be delivered on this raw endpoint
// means its messages are lost for good — LinkGaveUp, a logical failure in
// the Section 5 taxonomy.
func (t *TCP) OnLinkEvent(fn func(LinkEvent)) {
	t.outMu.Lock()
	t.linkFns = append(t.linkFns, fn)
	t.outMu.Unlock()
}

func (t *TCP) emitLink(ev LinkEvent) {
	t.outMu.Lock()
	fns := append([]func(LinkEvent){}, t.linkFns...)
	t.outMu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// Send implements Endpoint: it resolves the destination, stamps the
// routing fields and enqueues the message on the peer's outbox; the
// per-peer flusher coalesces queued messages into wire frames.  Only
// synchronous routing problems (unknown peer, closed endpoint) are
// errors; delivery failures surface through OnLinkEvent.
func (t *TCP) Send(to string, m Message) error {
	addr, ok := t.addrs[to]
	if !ok && t.resolve != nil {
		addr, ok = t.resolve(to)
	}
	if !ok {
		return fmt.Errorf("transport: no address for shell %s", to)
	}
	m.From, m.To = t.shellID, to
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("transport: endpoint %s closed", t.shellID)
	}
	t.mu.Unlock()
	t.outMu.Lock()
	o := t.outbox[to]
	if o == nil {
		o = &tcpOut{}
		t.outbox[to] = o
	}
	o.addr = addr
	if limit := t.outboxLimit; limit > 0 && len(o.pending) >= limit {
		// Bounded outbox: the newest message is dropped (queued ones keep
		// their FIFO order) and the loss is surfaced, not silent — on a raw
		// endpoint a shed message is gone for good.
		t.outMu.Unlock()
		t.mDropped.Inc()
		fires := 0
		if m.Kind == "fire" {
			fires = 1
		}
		t.emitLink(LinkEvent{
			Kind: LinkOverflow, Peer: to,
			Err:      fmt.Errorf("transport: outbox for %s at limit %d", to, limit),
			Messages: 1, Fires: fires,
		})
		return nil
	}
	o.pending = append(o.pending, m)
	if !o.running {
		o.running = true
		go t.flushPeer(to, o)
	}
	t.outMu.Unlock()
	return nil
}

// flushPeer drains one peer's outbox: each iteration takes everything
// queued so far as one batch, renders it wire-ready and ships it as a
// single frame.  The goroutine exits when the outbox is empty (flush-on-
// idle); the next Send restarts it.
func (t *TCP) flushPeer(to string, o *tcpOut) {
	for {
		t.outMu.Lock()
		batch := o.pending
		o.pending = nil
		addr := o.addr
		if len(batch) == 0 {
			o.running = false
			t.outCond.Broadcast()
			t.outMu.Unlock()
			return
		}
		t.outMu.Unlock()
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			t.dropBatch(to, batch, fmt.Errorf("transport: endpoint %s closed", t.shellID))
			continue
		}
		t.mBatch.Observe(float64(len(batch)))
		if err := t.sendFrame(to, addr, batch); err != nil {
			t.dropBatch(to, batch, err)
		}
	}
}

// sendFrame performs one batched round-trip to a peer, dialing lazily.
// It owns the marshal boundary: every message is rendered wire-ready
// here, immediately before encoding, so the materialization is local to
// the serialization it protects.
func (t *TCP) sendFrame(to, addr string, batch []Message) error {
	for i := range batch {
		batch[i].WireReady()
		batch[i].TriggerEvent = nil // never crosses the network
	}
	t.mu.Lock()
	c, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		nc, err := wire.Dial(addr, nil, t.dialOpts...)
		if err != nil {
			return err
		}
		t.mu.Lock()
		if exist, dup := t.peers[to]; dup {
			t.mu.Unlock()
			nc.Close()
			c = exist
		} else {
			t.peers[to] = nc
			t.mu.Unlock()
			c = nc
		}
	}
	var buf []byte
	var err error
	typ := "shellmsgb"
	if len(batch) == 1 {
		// A single message keeps the original frame shape, so batching and
		// non-batching endpoints interoperate.
		typ = "shellmsg"
		buf, err = json.Marshal(batch[0])
	} else {
		buf, err = json.Marshal(batch)
	}
	if err != nil {
		return fmt.Errorf("transport: marshal: %w", err)
	}
	if _, err := c.Do(wire.Message{Type: typ, F: map[string]string{"m": string(buf)}}); err != nil {
		// Drop the broken connection so the next frame redials.
		t.mu.Lock()
		if t.peers[to] == c {
			delete(t.peers, to)
		}
		t.mu.Unlock()
		c.Close()
		return err
	}
	return nil
}

// dropBatch reports a lost frame through the link-event observers.
func (t *TCP) dropBatch(to string, batch []Message, err error) {
	fires := 0
	for i := range batch {
		if batch[i].Kind == "fire" {
			fires++
		}
	}
	t.emitLink(LinkEvent{
		Kind: LinkGaveUp, Peer: to, Err: err,
		Messages: len(batch), Fires: fires,
	})
}

// Flush blocks until every queued outbound message has been either
// delivered or reported lost, implementing Flusher for scenario
// teardowns and tests that need send-completion.
func (t *TCP) Flush() error {
	t.outMu.Lock()
	defer t.outMu.Unlock()
	for {
		busy := false
		for _, o := range t.outbox {
			if o.running || len(o.pending) > 0 {
				busy = true
				break
			}
		}
		if !busy {
			return nil
		}
		t.outCond.Wait()
	}
}

// Close implements Endpoint.
func (t *TCP) Close() error {
	t.mu.Lock()
	if !t.closed {
		t.closed = true
		close(t.done)
	}
	peers := t.peers
	t.peers = map[string]*wire.Client{}
	t.mu.Unlock()
	for _, c := range peers {
		c.Close()
	}
	t.outMu.Lock()
	t.outCond.Broadcast()
	t.outMu.Unlock()
	return t.srv.Close()
}

var (
	_ Endpoint = (*TCP)(nil)
	_ Flusher  = (*TCP)(nil)
)

// TCPNetwork is a Network whose members listen on ephemeral local ports
// and discover each other through a shared registry — the initialization
// step that a production deployment would do with static configuration.
type TCPNetwork struct {
	mu    sync.Mutex
	addrs map[string]string
}

// NewTCPNetwork creates an empty registry.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{addrs: map[string]string{}}
}

// Join implements Network: it starts a listener for the shell and
// registers its address.
func (n *TCPNetwork) Join(shellID string, recv func(Message)) (Endpoint, error) {
	t, err := NewTCP(shellID, "127.0.0.1:0", nil, recv)
	if err != nil {
		return nil, err
	}
	t.resolve = func(id string) (string, bool) {
		n.mu.Lock()
		defer n.mu.Unlock()
		addr, ok := n.addrs[id]
		return addr, ok
	}
	n.mu.Lock()
	if _, dup := n.addrs[shellID]; dup {
		n.mu.Unlock()
		t.Close()
		return nil, fmt.Errorf("transport: shell %s already joined", shellID)
	}
	n.addrs[shellID] = t.Addr()
	n.mu.Unlock()
	return t, nil
}

var _ Network = (*TCPNetwork)(nil)
