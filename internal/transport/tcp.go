package transport

import (
	"encoding/json"
	"fmt"
	"sync"

	"cmtk/internal/wire"
)

// TCP is a mesh endpoint over real sockets.  Each shell listens on its
// own address and dials peers lazily, keeping one connection per peer.
// Inbound frames are acknowledged at the wire layer immediately and
// handed to a per-sender FIFO worker, so links stay ordered per (sender,
// receiver) pair like the in-process Bus while the receive callback never
// blocks the wire reply.  The decoupling matters: a handler that sends
// back to its peer while still inside the inbound frame (an ack arriving
// mid-request, a recovery broadcast) would otherwise form a cycle of
// requests each awaiting a reply the other side can only produce after
// its own nested send completes — a distributed deadlock broken only by
// request timeouts.
type TCP struct {
	shellID  string
	addrs    map[string]string           // shellID -> address
	resolve  func(string) (string, bool) // dynamic lookup when addrs is nil
	recv     func(Message)
	dialOpts []wire.DialOption
	srv      *wire.Server
	done     chan struct{}
	mu       sync.Mutex
	peers    map[string]*wire.Client
	inbox    map[string]chan Message // per-sender serial delivery queues
	closed   bool
}

// NewTCP starts a TCP endpoint for shellID listening on listenAddr.
// addrs maps every peer shell ID to its address (the routing table
// established "during initialization", Section 4.1).  recv is invoked for
// each inbound message.  dialOpts tune the peer connections (timeouts).
func NewTCP(shellID, listenAddr string, addrs map[string]string, recv func(Message), dialOpts ...wire.DialOption) (*TCP, error) {
	t := &TCP{
		shellID:  shellID,
		addrs:    addrs,
		recv:     recv,
		dialOpts: dialOpts,
		done:     make(chan struct{}),
		peers:    map[string]*wire.Client{},
		inbox:    map[string]chan Message{},
	}
	srv, err := wire.Serve(listenAddr, tcpHandler{t})
	if err != nil {
		return nil, err
	}
	t.srv = srv
	return t, nil
}

// Addr returns the listening address.
func (t *TCP) Addr() string { return t.srv.Addr() }

type tcpHandler struct{ t *TCP }

func (h tcpHandler) NewSession(func(wire.Message) error) (wire.Session, error) {
	return tcpSession{h.t}, nil
}

type tcpSession struct{ t *TCP }

func (s tcpSession) Handle(m wire.Message) wire.Message {
	if m.Type != "shellmsg" {
		return wire.ErrorReply(m, fmt.Errorf("transport: unknown request %q", m.Type))
	}
	var msg Message
	if err := json.Unmarshal([]byte(m.Field("m")), &msg); err != nil {
		return wire.ErrorReply(m, fmt.Errorf("transport: bad message: %w", err))
	}
	s.t.deliver(msg)
	return wire.Reply(m)
}

func (tcpSession) Close() {}

// deliver queues an inbound message on its sender's FIFO worker.  The
// queue is keyed by sender shell ID, not connection, so order holds even
// across a peer's reconnects.
func (t *TCP) deliver(m Message) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	q, ok := t.inbox[m.From]
	if !ok {
		q = make(chan Message, 1024)
		t.inbox[m.From] = q
		go t.drain(q)
	}
	t.mu.Unlock()
	select {
	case q <- m: // backpressure: a full queue blocks this sender's frames
	case <-t.done:
	}
}

func (t *TCP) drain(q chan Message) {
	for {
		select {
		case m := <-q:
			t.recv(m)
		case <-t.done:
			return
		}
	}
}

// Send implements Endpoint.
func (t *TCP) Send(to string, m Message) error {
	addr, ok := t.addrs[to]
	if !ok && t.resolve != nil {
		addr, ok = t.resolve(to)
	}
	if !ok {
		return fmt.Errorf("transport: no address for shell %s", to)
	}
	m.From, m.To = t.shellID, to
	m.TriggerEvent = nil // never crosses the network
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("transport: endpoint %s closed", t.shellID)
	}
	c, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		nc, err := wire.Dial(addr, nil, t.dialOpts...)
		if err != nil {
			return err
		}
		t.mu.Lock()
		if exist, dup := t.peers[to]; dup {
			t.mu.Unlock()
			nc.Close()
			c = exist
		} else {
			t.peers[to] = nc
			t.mu.Unlock()
			c = nc
		}
	}
	buf, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("transport: marshal: %w", err)
	}
	if _, err := c.Do(wire.Message{Type: "shellmsg", F: map[string]string{"m": string(buf)}}); err != nil {
		// Drop the broken connection so the next send redials.
		t.mu.Lock()
		if t.peers[to] == c {
			delete(t.peers, to)
		}
		t.mu.Unlock()
		c.Close()
		return err
	}
	return nil
}

// Close implements Endpoint.
func (t *TCP) Close() error {
	t.mu.Lock()
	if !t.closed {
		t.closed = true
		close(t.done)
	}
	peers := t.peers
	t.peers = map[string]*wire.Client{}
	t.mu.Unlock()
	for _, c := range peers {
		c.Close()
	}
	return t.srv.Close()
}

var _ Endpoint = (*TCP)(nil)

// TCPNetwork is a Network whose members listen on ephemeral local ports
// and discover each other through a shared registry — the initialization
// step that a production deployment would do with static configuration.
type TCPNetwork struct {
	mu    sync.Mutex
	addrs map[string]string
}

// NewTCPNetwork creates an empty registry.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{addrs: map[string]string{}}
}

// Join implements Network: it starts a listener for the shell and
// registers its address.
func (n *TCPNetwork) Join(shellID string, recv func(Message)) (Endpoint, error) {
	t, err := NewTCP(shellID, "127.0.0.1:0", nil, recv)
	if err != nil {
		return nil, err
	}
	t.resolve = func(id string) (string, bool) {
		n.mu.Lock()
		defer n.mu.Unlock()
		addr, ok := n.addrs[id]
		return addr, ok
	}
	n.mu.Lock()
	if _, dup := n.addrs[shellID]; dup {
		n.mu.Unlock()
		t.Close()
		return nil, fmt.Errorf("transport: shell %s already joined", shellID)
	}
	n.addrs[shellID] = t.Addr()
	n.mu.Unlock()
	return t, nil
}

var _ Network = (*TCPNetwork)(nil)
