package transport

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"cmtk/internal/durable"
	"cmtk/internal/obs"
	"cmtk/internal/vclock"
)

// durPair is a journaled sender A talking to a plain reliable receiver B
// over a partitionable fabric, with enough handles to crash and restart
// A's process in miniature.
type durPair struct {
	clk   *vclock.Virtual
	flaky *Flaky
	dir   string

	store *durable.Store
	a     *ReliableEndpoint

	mu  sync.Mutex
	got []Message
}

func newDurPair(t *testing.T, dir string) *durPair {
	t.Helper()
	clk := vclock.NewVirtual(vclock.Epoch)
	p := &durPair{clk: clk, dir: dir}
	bus := NewBus(clk, 10*time.Millisecond)
	p.flaky = NewFlaky(bus, FlakyOptions{Clock: clk, Metrics: obs.NewRegistry()})
	relB := NewReliable(p.flaky, ReliableOptions{
		Clock: clk, RetryInterval: 100 * time.Millisecond, Metrics: obs.NewRegistry(),
	})
	if _, err := relB.Join("B", func(m Message) {
		p.mu.Lock()
		p.got = append(p.got, m)
		p.mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	p.startA(t)
	return p
}

// startA boots (or reboots) A's incarnation: a fresh store over the same
// state directory, a fresh endpoint, journal recovery, then a bind to the
// fabric.
func (p *durPair) startA(t *testing.T) int {
	t.Helper()
	st, err := durable.Open(p.dir, durable.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	p.store = st
	p.a = NewReliableEndpoint(nil, ReliableOptions{
		Clock: p.clk, RetryInterval: 100 * time.Millisecond, Metrics: obs.NewRegistry(),
	})
	replayed, err := p.a.EnableJournal(st, "rel-A")
	if err != nil {
		t.Fatal(err)
	}
	inner, err := p.flaky.Join("A", p.a.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	p.a.Bind(inner)
	return replayed
}

// crashA kills A's incarnation: journaling dies first (nothing after the
// crash instant persists), then the endpoint drops off the fabric.
func (p *durPair) crashA(t *testing.T) {
	t.Helper()
	p.store.Crash()
	if err := p.a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.store.Close(); err != nil {
		t.Fatal(err)
	}
}

func (p *durPair) seen() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.got))
	for i, m := range p.got {
		out[i], _ = strconv.Atoi(m.Payload["k"])
	}
	return out
}

func wantSeen(t *testing.T, p *durPair, n int) {
	t.Helper()
	got := p.seen()
	if len(got) != n {
		t.Fatalf("B saw %v, want exactly 0..%d in order", got, n-1)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("B saw %v: out of order / duplicated at %d", got, i)
		}
	}
}

// TestJournalReplaysOutboxAcrossRestart is the crash that matters: A
// buffers fires it cannot deliver (B partitioned away), dies, and its
// next incarnation replays them from the journal in order — the Section 5
// "remember messages that need to be sent out upon recovery" condition.
func TestJournalReplaysOutboxAcrossRestart(t *testing.T) {
	p := newDurPair(t, t.TempDir())
	// Deliver two messages normally so the stream has history.
	for i := 0; i < 2; i++ {
		if err := p.a.Send("B", fireMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.clk.Advance(time.Second)
	wantSeen(t, p, 2)

	// Partition, buffer three more, crash.
	p.flaky.PartitionBoth("A", "B")
	for i := 2; i < 5; i++ {
		if err := p.a.Send("B", fireMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.clk.Advance(time.Second)
	if got := p.seen(); len(got) != 2 {
		t.Fatalf("partition leaked: B saw %v", got)
	}
	p.crashA(t)

	replayed := p.startA(t)
	if replayed != 3 {
		t.Fatalf("recovery replayed %d messages, want the 3 unacked", replayed)
	}
	p.flaky.HealAll()
	p.clk.Advance(10 * time.Second)
	wantSeen(t, p, 5)

	// The resumed numbering keeps working for new traffic.
	if err := p.a.Send("B", fireMsg(5)); err != nil {
		t.Fatal(err)
	}
	p.clk.Advance(time.Second)
	wantSeen(t, p, 6)
}

// TestJournalExactlyOnceWhenAckLost: A crashes after B processed the
// messages but before the acks landed.  The restarted A retransmits from
// the journal; B's dedup (same epoch, same numbering) discards every copy
// — exactly-once effect across the crash, not just at-least-once.
func TestJournalExactlyOnceWhenAckLost(t *testing.T) {
	p := newDurPair(t, t.TempDir())
	for i := 0; i < 2; i++ {
		if err := p.a.Send("B", fireMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.clk.Advance(time.Second)
	wantSeen(t, p, 2)

	// One-way partition: B receives and processes, its acks black-hole.
	p.flaky.Partition("B", "A")
	for i := 2; i < 4; i++ {
		if err := p.a.Send("B", fireMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.clk.Advance(time.Second)
	wantSeen(t, p, 4) // B processed them; A still holds them unacked
	if n := p.a.Pending("B"); n != 2 {
		t.Fatalf("A pending = %d, want 2 (acks were lost)", n)
	}
	p.crashA(t)

	if replayed := p.startA(t); replayed != 2 {
		t.Fatalf("recovery replayed %d, want 2", replayed)
	}
	p.flaky.HealAll()
	p.clk.Advance(10 * time.Second)
	wantSeen(t, p, 4) // retransmits were duplicates; B must not re-execute
	if n := p.a.Pending("B"); n != 0 {
		t.Fatalf("A pending = %d after heal, want 0", n)
	}
}

// TestJournalCheckpointCompacts: the journal self-compacts once it
// crosses the byte threshold, and a warm restart recovers from the
// snapshot with nothing to replay.
func TestJournalCheckpointCompacts(t *testing.T) {
	p := newDurPair(t, t.TempDir())
	ropts := p.a.opts
	if ropts.CheckpointBytes != 256<<10 {
		t.Fatalf("default CheckpointBytes = %d", ropts.CheckpointBytes)
	}
	for i := 0; i < 200; i++ {
		if err := p.a.Send("B", fireMsg(i)); err != nil {
			t.Fatal(err)
		}
		p.clk.Advance(50 * time.Millisecond)
	}
	p.clk.Advance(time.Second)
	wantSeen(t, p, 200)
	if err := p.a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.store.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := durable.ReadLog(p.dir, "rel-A")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || !rec.Clean {
		t.Fatalf("want clean checkpointed journal, got snapshot=%v clean=%v", rec.Snapshot != nil, rec.Clean)
	}
	sum, err := SummarizeJournal(rec)
	if err != nil {
		t.Fatal(err)
	}
	b := sum.Out["B"]
	if b.Pending != 0 || b.NextSeq != 200 {
		t.Fatalf("journal summary = %+v, want empty outbox at seq 200", b)
	}
	if sum.Epoch == 0 {
		t.Fatal("journal lost the incarnation epoch")
	}
}

// TestJournalSummaryCountsFires exercises the read-only inspection path
// cmctl uses against a dirty (crashed) state directory.
func TestJournalSummaryCountsFires(t *testing.T) {
	p := newDurPair(t, t.TempDir())
	p.flaky.PartitionBoth("A", "B")
	for i := 0; i < 3; i++ {
		if err := p.a.Send("B", fireMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.a.Send("B", Message{Kind: "failure", FailSite: "A"}); err != nil {
		t.Fatal(err)
	}
	p.crashA(t)

	rec, err := durable.ReadLog(p.dir, "rel-A")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Clean {
		t.Fatal("crashed dir reported clean")
	}
	sum, err := SummarizeJournal(rec)
	if err != nil {
		t.Fatal(err)
	}
	b := sum.Out["B"]
	if b.Pending != 4 || b.Fires != 3 {
		t.Fatalf("summary = %+v, want 4 pending of which 3 fires", b)
	}
}

// TestJournalSurvivesGaveUp: a RetryBudget drop is permanent — the next
// incarnation must not resurrect the abandoned outbox.
func TestJournalSurvivesGaveUp(t *testing.T) {
	dir := t.TempDir()
	clk := vclock.NewVirtual(vclock.Epoch)
	bus := NewBus(clk, 10*time.Millisecond)
	flaky := NewFlaky(bus, FlakyOptions{Clock: clk, Metrics: obs.NewRegistry()})
	st, err := durable.Open(dir, durable.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	a := NewReliableEndpoint(nil, ReliableOptions{
		Clock: clk, RetryInterval: 100 * time.Millisecond, RetryBudget: 2,
		Metrics: obs.NewRegistry(),
	})
	if _, err := a.EnableJournal(st, "rel-A"); err != nil {
		t.Fatal(err)
	}
	inner, err := flaky.Join("A", a.Deliver)
	if err != nil {
		t.Fatal(err)
	}
	a.Bind(inner)
	flaky.PartitionBoth("A", "B")
	if err := a.Send("B", fireMsg(0)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute) // budget exhausts, outbox dropped
	if n := a.Pending("B"); n != 0 {
		t.Fatalf("outbox not dropped: %d pending", n)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := durable.Open(dir, durable.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	a2 := NewReliableEndpoint(nil, ReliableOptions{Clock: clk, Metrics: obs.NewRegistry()})
	replayed, err := a2.EnableJournal(st2, "rel-A")
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("restart resurrected %d dropped messages", replayed)
	}
}

func TestJournalDoubleEnableRejected(t *testing.T) {
	st, err := durable.Open(t.TempDir(), durable.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	a := NewReliableEndpoint(nil, ReliableOptions{Metrics: obs.NewRegistry()})
	if _, err := a.EnableJournal(st, "rel-A"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.EnableJournal(st, "rel-A"); err == nil {
		t.Fatal("second EnableJournal accepted")
	}
}
