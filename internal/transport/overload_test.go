package transport

import (
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"cmtk/internal/obs"
	"cmtk/internal/vclock"
	"cmtk/internal/wire"
)

// stallListener accepts connections and reads forever without replying,
// so a TCP endpoint's flusher parks mid-round-trip and its outbox fills.
func stallListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestTCPOutboxCapExactDrops parks the flusher against a stalled peer,
// fills the bounded outbox, and checks the overflow accounting exactly:
// 4 admitted, 5 dropped, 5 LinkOverflow events of one message each.
func TestTCPOutboxCapExactDrops(t *testing.T) {
	addr := stallListener(t)
	// TCP metrics land in obs.Default; read deltas against this baseline.
	before := obs.Default.Snapshot()
	ep, err := NewTCP("A", "127.0.0.1:0", map[string]string{"B": addr},
		func(Message) {}, wire.WithRequestTimeout(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ep.SetOutboxLimit(4)
	var evMu sync.Mutex
	var evs []LinkEvent
	ep.OnLinkEvent(func(ev LinkEvent) {
		evMu.Lock()
		evs = append(evs, ev)
		evMu.Unlock()
	})
	if err := ep.Send("B", Message{Kind: "fire", Rule: "r0"}); err != nil {
		t.Fatal(err)
	}
	// Wait until the flusher has taken the first message as its in-flight
	// batch, so the outbox is empty and subsequent admissions are exact.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ep.outMu.Lock()
		empty := len(ep.outbox["B"].pending) == 0
		ep.outMu.Unlock()
		if empty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flusher never took the first batch")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i <= 9; i++ {
		if err := ep.Send("B", Message{Kind: "fire", Rule: "r" + strconv.Itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}
	evMu.Lock()
	gotEvs := append([]LinkEvent{}, evs...)
	evMu.Unlock()
	if len(gotEvs) != 5 {
		t.Fatalf("LinkOverflow events = %d, want exactly 5", len(gotEvs))
	}
	for i, ev := range gotEvs {
		if ev.Kind != LinkOverflow || ev.Peer != "B" || ev.Messages != 1 || ev.Fires != 1 {
			t.Fatalf("event %d = %+v, want LinkOverflow peer B, 1 message, 1 fire", i, ev)
		}
	}
	ep.outMu.Lock()
	depth := len(ep.outbox["B"].pending)
	ep.outMu.Unlock()
	if depth != 4 {
		t.Fatalf("outbox depth = %d, want exactly the limit 4", depth)
	}
	delta := obs.Default.Snapshot().Delta(before)
	if got := delta[`cmtk_transport_buffer_dropped_total{shell="A",buffer="tcp-outbox"}`]; got != 5 {
		t.Fatalf("tcp-outbox drop counter = %v, want exactly 5", got)
	}
}

// ackSink is a minimal bound endpoint recording what the reliability
// layer sends back (acks) without any network.
type ackSink struct {
	mu   sync.Mutex
	sent []Message
}

func (a *ackSink) Send(to string, m Message) error {
	a.mu.Lock()
	a.sent = append(a.sent, m)
	a.mu.Unlock()
	return nil
}
func (a *ackSink) Close() error { return nil }

// TestReorderHoldEvictionExactCounts delivers a gapped burst straight to
// a receiver whose reorder buffer caps at 4: exactly 4 arrivals are held,
// 5 are evicted (counted, deterministic — the arriving copy is the one
// discarded), and filling the gap releases exactly held+1 messages in
// order.
func TestReorderHoldEvictionExactCounts(t *testing.T) {
	reg := obs.NewRegistry()
	clk := vclock.NewVirtual(vclock.Epoch)
	var mu sync.Mutex
	var got []Message
	re := NewReliableEndpoint(func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}, ReliableOptions{Clock: clk, OutboxLimit: 4, Metrics: reg, Name: "B"})
	re.Bind(&ackSink{})
	mk := func(seq int) Message {
		return Message{
			Kind: "fire", From: "A", Rule: "r" + strconv.Itoa(seq),
			Payload: map[string]string{
				relSeqKey:   strconv.Itoa(seq),
				relEpochKey: "7",
			},
		}
	}
	// Seqs 1..9 arrive first: 0 is the gap.  1..4 are held, 5..9 evicted.
	for seq := 1; seq <= 9; seq++ {
		re.Deliver(mk(seq))
	}
	mu.Lock()
	early := len(got)
	mu.Unlock()
	if early != 0 {
		t.Fatalf("delivered %d messages before the gap filled, want 0", early)
	}
	snap := reg.Snapshot()
	if held := snap.Sum("cmtk_transport_reorder_held_total"); held != 4 {
		t.Fatalf("held = %v, want exactly 4", held)
	}
	if dropped := snap[`cmtk_transport_buffer_dropped_total{shell="B",buffer="reorder-hold"}`]; dropped != 5 {
		t.Fatalf("reorder-hold drop counter = %v, want exactly 5", dropped)
	}
	// The gap arrives: 0 plus held 1..4 release in order; evicted 5..9
	// stay lost until the sender's go-back-N pass (not simulated here).
	re.Deliver(mk(0))
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("delivered %d after gap fill, want exactly 5", len(got))
	}
	for i, m := range got {
		if want := "r" + strconv.Itoa(i); m.Rule != want {
			t.Fatalf("delivery %d is %s, want %s (order broken)", i, m.Rule, want)
		}
	}
}
