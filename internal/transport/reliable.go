// Reliable delivery for the shell mesh.  The paper's failure model
// (Section 5) lets a crash degrade to a *metric* failure only "if the
// database ... can remember messages that need to be sent out upon
// recovery"; a raw link that drops a fire message instead breaks the
// guarantees outright.  Reliable is a Network/Endpoint wrapper that earns
// the metric-failure classification: every (sender, receiver) link gets
// per-link sequence numbers, a bounded outbox with ack-driven retry and
// exponential backoff, receiver-side dedup, and a reorder buffer, so
// messages survive transient outages with at-least-once delivery and
// exactly-once effect — and FIFO order per link (the Appendix A.2
// property-7 assumption) holds even across retransmits.
//
// Peer health maps onto the Section 5 failure taxonomy through LinkEvents:
// FailThreshold consecutive failed delivery attempts degrade the link
// (metric failure — messages keep buffering), outbox overflow or retry-
// budget exhaustion loses messages (logical failure), and a degraded link
// whose outbox fully drains after reconnection raises a recovery event so
// shells can clear the metric failures it caused.

package transport

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"cmtk/internal/durable"
	"cmtk/internal/obs"
	"cmtk/internal/vclock"
)

// Reserved message vocabulary of the reliability layer.  relSeqKey,
// relBaseKey and relEpochKey ride in Message.Payload on data messages;
// acks are standalone messages of kind relAckKind carrying the receiver's
// next expected sequence number (a cumulative ack).
//
// relBaseKey is the lowest unacked sequence in the sender's outbox at
// transmission time.  Everything below it was acknowledged (necessarily
// by a previous incarnation of the receiver, if the receiver holds no
// state for the link) and will never be retransmitted, so a receiver may
// always fast-forward its expected sequence to the base — this is what
// lets a restarted receiver process, whose dedup state died with it,
// resume the stream mid-way instead of waiting forever for retired
// messages.  relEpochKey identifies the sender incarnation (construction
// time, monotone across restarts): a higher epoch than the one on record
// means the sender restarted and began a fresh stream, so the receiver
// resets its link state; a lower one marks a stale straggler to drop.
const (
	relSeqKey   = "rel.seq"
	relBaseKey  = "rel.base"
	relEpochKey = "rel.epoch"
	relAckKind  = "rel.ack"
	relAckKey   = "rel.next"
)

// LinkEventKind classifies reliability-layer link events.
type LinkEventKind int

// Link event kinds.
const (
	// LinkRetry: a retransmission round ran for a link with unacked
	// messages.
	LinkRetry LinkEventKind = iota
	// LinkDegraded: FailThreshold consecutive delivery attempts went
	// unacked — a metric failure; buffering continues.
	LinkDegraded
	// LinkRecovered: a degraded link's outbox fully drained again — the
	// buffered messages were replayed in order and acknowledged.
	LinkRecovered
	// LinkOverflow: the outbox hit OutboxLimit and a message was dropped —
	// a logical failure.
	LinkOverflow
	// LinkGaveUp: RetryBudget attempts elapsed and the outbox was dropped —
	// a logical failure.
	LinkGaveUp
)

func (k LinkEventKind) String() string {
	switch k {
	case LinkRetry:
		return "retry"
	case LinkDegraded:
		return "degraded"
	case LinkRecovered:
		return "recovered"
	case LinkOverflow:
		return "overflow"
	default:
		return "gave-up"
	}
}

// LinkEvent reports a reliability-layer state change on one link.
type LinkEvent struct {
	Kind LinkEventKind
	Peer string // the remote shell
	Err  error  // last send error, when one was observed
	// Attempts is the count of consecutive unacknowledged delivery
	// attempts (Retry, Degraded).
	Attempts int
	// Messages counts the messages involved: retransmitted (Retry),
	// replayed and acknowledged since degradation (Recovered), or dropped
	// (Overflow, GaveUp).
	Messages int
	// Fires is how many of Messages are rule firings (kind "fire").
	Fires int
}

// ReliableOptions tunes the reliability layer.  The zero value gives
// real-clock defaults suitable for a live TCP mesh.
type ReliableOptions struct {
	// Clock drives retry timers and backoff; nil means real time.  Under a
	// vclock.Virtual the whole retry schedule is deterministic.
	Clock vclock.Clock
	// RetryInterval is the base retransmission backoff (default 200ms);
	// attempt n waits RetryInterval·2ⁿ, capped at MaxBackoff.
	RetryInterval time.Duration
	// MaxBackoff caps the exponential backoff (default 16×RetryInterval).
	MaxBackoff time.Duration
	// FailThreshold is the number of consecutive unacked delivery attempts
	// after which the link is reported degraded (default 3).
	FailThreshold int
	// RetryBudget bounds attempts per outage; exceeding it drops the
	// outbox with a LinkGaveUp event.  0 means retry forever.
	RetryBudget int
	// OutboxLimit bounds the unacked messages buffered per link (default
	// 1024); the receive-side reorder buffer shares the bound.
	OutboxLimit int
	// Seed makes the backoff jitter deterministic (per-link streams are
	// derived from Seed and the peer name).
	Seed int64
	// Metrics is the registry the reliability layer's per-link counters
	// land in; nil means obs.Default.
	Metrics *obs.Registry
	// Durable, when set, journals every endpoint's link state (epoch,
	// outbox, acks, dedup cursors) to the store so a restarted process
	// replays its unacked messages in order — the Section 5 condition for
	// a crash to stay a metric failure.  Reliable.Join names each shell's
	// journal "rel-"+shellID; direct NewReliableEndpoint constructions
	// call EnableJournal themselves.
	Durable *durable.Store
	// CheckpointBytes is the journal size that triggers compaction into a
	// checkpoint snapshot (default 256 KiB).
	CheckpointBytes int64
	// Name is the owning shell's ID, used as the label on the shared
	// bounded-buffer drop counter (cmtk_transport_buffer_dropped_total).
	// Reliable.Join fills it with the joining shell's ID; direct
	// NewReliableEndpoint constructions should set it themselves (empty
	// falls back to "local").
	Name string
}

func (o ReliableOptions) withDefaults() ReliableOptions {
	if o.Clock == nil {
		o.Clock = vclock.Real{}
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = 200 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 16 * o.RetryInterval
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.OutboxLimit <= 0 {
		o.OutboxLimit = 1024
	}
	if o.CheckpointBytes <= 0 {
		o.CheckpointBytes = 256 << 10
	}
	if o.Name == "" {
		o.Name = "local"
	}
	return o
}

// Reliable wraps a Network so every link gets sequencing, ack-driven
// retransmission, outage buffering with in-order replay, and receiver
// dedup.  Both sides of a link must be wrapped (the receiver answers with
// acks); unwrapped senders still interoperate — their messages carry no
// sequence number and pass straight through.
type Reliable struct {
	inner Network
	opts  ReliableOptions
}

// NewReliable wraps a network with reliable links.
func NewReliable(inner Network, opts ReliableOptions) *Reliable {
	return &Reliable{inner: inner, opts: opts}
}

// Join implements Network.
func (r *Reliable) Join(shellID string, recv func(Message)) (Endpoint, error) {
	opts := r.opts
	if opts.Name == "" {
		opts.Name = shellID
	}
	re := NewReliableEndpoint(recv, opts)
	if r.opts.Durable != nil {
		if _, err := re.EnableJournal(r.opts.Durable, "rel-"+shellID); err != nil {
			return nil, err
		}
	}
	inner, err := r.inner.Join(shellID, re.Deliver)
	if err != nil {
		return nil, err
	}
	re.Bind(inner)
	return re, nil
}

var _ Network = (*Reliable)(nil)

// relMsg is one buffered outbound message.
type relMsg struct {
	seq uint64
	m   Message
}

// relOut is the sender half of one link.
type relOut struct {
	nextSeq  uint64
	q        []relMsg // unacked, ascending seq
	timer    vclock.Timer
	attempts int // consecutive unacked delivery attempts
	degraded bool
	replayed int // messages acked while degraded
	lastErr  error
	rng      *rand.Rand

	// per-peer metric cells, resolved once when the link is created
	mSends    *obs.Counter
	mRetries  *obs.Counter
	mAcked    *obs.Counter
	mReplayed *obs.Counter
	mOverflow *obs.Counter
	mGaveUp   *obs.Counter
	mDepth    *obs.Gauge
}

// relIn is the receiver half of one link.
type relIn struct {
	epoch uint64             // sender incarnation last seen
	next  uint64             // next expected seq
	hold  map[uint64]Message // reorder buffer for out-of-order arrivals

	mDups *obs.Counter
	mHeld *obs.Counter
}

// relMetrics holds the reliability layer's metric families; per-peer
// cells are resolved into relOut/relIn when a link first appears.
type relMetrics struct {
	sends, retries, acked, replayed *obs.CounterVec
	dropped                         *obs.CounterVec // peer, reason
	dups, held                      *obs.CounterVec
	depth                           *obs.GaugeVec
	// holdDropped counts reorder-buffer evictions under the shared
	// bounded-buffer family; one cell per endpoint, resolved by Name.
	holdDropped *obs.Counter
}

func newRelMetrics(reg *obs.Registry, name string) relMetrics {
	if reg == nil {
		reg = obs.Default
	}
	return relMetrics{
		holdDropped: BufferDropCounter(reg, name, "reorder-hold"),
		sends: reg.Counter("cmtk_transport_sends_total",
			"Messages sequenced and buffered for transmission, per link.", "peer"),
		retries: reg.Counter("cmtk_transport_retries_total",
			"Message retransmissions by the retry schedule, per link.", "peer"),
		acked: reg.Counter("cmtk_transport_acked_total",
			"Outbox entries retired by cumulative acks, per link.", "peer"),
		replayed: reg.Counter("cmtk_transport_replayed_total",
			"Messages replayed in order and acknowledged while a link recovered from degradation.", "peer"),
		dropped: reg.Counter("cmtk_transport_outbox_dropped_total",
			"Buffered messages lost for good, by reason (overflow, gave-up).", "peer", "reason"),
		dups: reg.Counter("cmtk_transport_dups_dropped_total",
			"Receiver-side duplicates discarded by sequence-number dedup, per link.", "peer"),
		held: reg.Counter("cmtk_transport_reorder_held_total",
			"Out-of-order arrivals parked in the reorder buffer, per link.", "peer"),
		depth: reg.Gauge("cmtk_transport_outbox_depth",
			"Unacked messages currently buffered, per link.", "peer"),
	}
}

// ReliableEndpoint is one shell's reliable attachment.  It is normally
// created through Reliable.Join; deployments that build raw endpoints
// directly (transport.NewTCP) construct one with NewReliableEndpoint,
// route the raw endpoint's inbound callback to Deliver, and Bind the raw
// endpoint for sends.  Bind may be called again after the underlying
// endpoint crashes — sequencing and dedup state survive, so the outbox is
// replayed in order and retransmits are deduplicated (exactly-once
// effect across the outage).
//
// A full process restart on either side is tolerated too: data messages
// carry the sender incarnation epoch and the outbox base, so a restarted
// receiver (whose dedup state died with it) fast-forwards to the base and
// resumes the stream mid-way, and a restarted sender's higher epoch makes
// the receiver reset the link and accept the fresh numbering.  Across a
// restart delivery is at-least-once in FIFO order; only a surviving
// endpoint can deduplicate down to exactly-once.
type ReliableEndpoint struct {
	opts  ReliableOptions
	clock vclock.Clock
	recv  func(Message)
	epoch uint64 // this sender incarnation, stamped on outbound messages

	met relMetrics

	mu       sync.Mutex
	inner    Endpoint
	out      map[string]*relOut
	in       map[string]*relIn
	handlers []func(LinkEvent)
	closed   bool

	// durable journal (nil until EnableJournal); jErr latches the first
	// journaling failure, after which the journal is treated as dead.
	j    *durable.Log
	jErr error
}

// NewReliableEndpoint creates an unbound reliable endpoint delivering
// inbound messages to recv.
func NewReliableEndpoint(recv func(Message), opts ReliableOptions) *ReliableEndpoint {
	o := opts.withDefaults()
	return &ReliableEndpoint{
		opts: o,
		// The construction instant identifies this incarnation: a process
		// that crashes and restarts gets a strictly later epoch, which is
		// how peers tell a fresh stream from a retransmit of the old one.
		epoch: uint64(o.Clock.Now().UnixNano()),
		clock: o.Clock,
		recv:  recv,
		met:   newRelMetrics(o.Metrics, o.Name),
		out:   map[string]*relOut{},
		in:    map[string]*relIn{},
	}
}

// Bind installs (or replaces, after a crash) the raw endpoint used for
// transmission.
func (r *ReliableEndpoint) Bind(inner Endpoint) {
	r.mu.Lock()
	r.inner = inner
	r.mu.Unlock()
}

// OnLinkEvent registers an observer for link health events.  Handlers run
// outside the endpoint's lock and may call Send.
func (r *ReliableEndpoint) OnLinkEvent(fn func(LinkEvent)) {
	r.mu.Lock()
	r.handlers = append(r.handlers, fn)
	r.mu.Unlock()
}

// Pending reports the number of unacked messages buffered for a peer.
func (r *ReliableEndpoint) Pending(peer string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if o := r.out[peer]; o != nil {
		return len(o.q)
	}
	return 0
}

func (r *ReliableEndpoint) emit(evs []LinkEvent) {
	if len(evs) == 0 {
		return
	}
	r.mu.Lock()
	fns := append([]func(LinkEvent){}, r.handlers...)
	r.mu.Unlock()
	for _, ev := range evs {
		for _, fn := range fns {
			fn(ev)
		}
	}
}

func (r *ReliableEndpoint) outLink(to string) *relOut {
	o := r.out[to]
	if o == nil {
		h := fnv.New64a()
		h.Write([]byte(to))
		o = &relOut{
			rng:       rand.New(rand.NewSource(r.opts.Seed ^ int64(h.Sum64()))),
			mSends:    r.met.sends.With(to),
			mRetries:  r.met.retries.With(to),
			mAcked:    r.met.acked.With(to),
			mReplayed: r.met.replayed.With(to),
			mOverflow: r.met.dropped.With(to, "overflow"),
			mGaveUp:   r.met.dropped.With(to, "gave-up"),
			mDepth:    r.met.depth.With(to),
		}
		r.out[to] = o
	}
	return o
}

// backoffLocked computes the delay before the next retransmission round:
// exponential in the consecutive-failure count, capped, plus up to 10%
// deterministic jitter so fleets of links do not retry in lockstep.
func (o *relOut) backoffLocked(opts ReliableOptions) time.Duration {
	d := opts.RetryInterval
	for i := 0; i < o.attempts && d < opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > opts.MaxBackoff {
		d = opts.MaxBackoff
	}
	return d + time.Duration(o.rng.Int63n(int64(d)/10+1))
}

// scheduleLocked arms the retry timer for a link if none is pending.
func (r *ReliableEndpoint) scheduleLocked(to string, o *relOut) {
	if o.timer != nil {
		return
	}
	o.timer = r.clock.AfterFunc(o.backoffLocked(r.opts), func() { r.retry(to) })
}

func countFires(q []relMsg) int {
	n := 0
	for _, e := range q {
		if e.m.Kind == "fire" {
			n++
		}
	}
	return n
}

// Send implements Endpoint.  The message is sequenced, buffered until
// acknowledged, and transmitted; loss is repaired by the retry schedule,
// so Send only errors when the endpoint itself is closed or unbound.
// Overflow of the bounded outbox is surfaced as a LinkOverflow event (a
// logical failure), not an error, so callers do not double-report.
func (r *ReliableEndpoint) Send(to string, m Message) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("transport: reliable endpoint closed")
	}
	inner := r.inner
	if inner == nil {
		r.mu.Unlock()
		return fmt.Errorf("transport: reliable endpoint not bound")
	}
	o := r.outLink(to)
	if len(o.q) >= r.opts.OutboxLimit {
		ev := LinkEvent{
			Kind: LinkOverflow, Peer: to, Err: o.lastErr,
			Attempts: o.attempts, Messages: 1,
		}
		if m.Kind == "fire" {
			ev.Fires = 1
		}
		o.mOverflow.Inc()
		r.mu.Unlock()
		r.emit([]LinkEvent{ev})
		return nil
	}
	seq := o.nextSeq
	o.nextSeq++
	wm := m
	if r.j != nil {
		// The journal serializes queued messages; in-process-only fields
		// (BindingsVal, TriggerEvent) would not survive a crash replay, so
		// fold them into their wire form before the message is logged.
		wm.WireReady()
	}
	p := make(map[string]string, len(m.Payload)+2)
	for k, v := range m.Payload {
		p[k] = v
	}
	p[relSeqKey] = strconv.FormatUint(seq, 10)
	p[relEpochKey] = strconv.FormatUint(r.epoch, 10)
	wm.Payload = p
	o.q = append(o.q, relMsg{seq: seq, m: wm})
	o.mSends.Inc()
	o.mDepth.Set(int64(len(o.q)))
	r.journalLocked(jSend, jSendRec{Peer: to, Seq: seq, Msg: wm})
	r.maybeCheckpointLocked()
	out := withBase(wm, o.q[0].seq)
	r.scheduleLocked(to, o)
	r.mu.Unlock()
	if err := inner.Send(to, out); err != nil {
		r.mu.Lock()
		o.lastErr = err
		r.mu.Unlock()
	}
	return nil
}

// retry runs one retransmission round for a link.
func (r *ReliableEndpoint) retry(to string) {
	r.mu.Lock()
	o := r.out[to]
	if o == nil || r.closed {
		r.mu.Unlock()
		return
	}
	o.timer = nil
	if len(o.q) == 0 {
		o.attempts = 0
		r.mu.Unlock()
		return
	}
	o.attempts++
	var evs []LinkEvent
	if !o.degraded && o.attempts >= r.opts.FailThreshold {
		o.degraded = true
		o.replayed = 0
		evs = append(evs, LinkEvent{
			Kind: LinkDegraded, Peer: to, Err: o.lastErr, Attempts: o.attempts,
			Messages: len(o.q), Fires: countFires(o.q),
		})
	}
	if r.opts.RetryBudget > 0 && o.attempts > r.opts.RetryBudget {
		dropped := o.q
		o.q = nil
		o.attempts = 0
		o.degraded = false
		o.mGaveUp.Add(uint64(len(dropped)))
		o.mDepth.Set(0)
		// The drop is permanent state: journal a synthetic full ack so a
		// restart does not resurrect the abandoned outbox.
		r.journalLocked(jAck, jAckRec{Peer: to, Ack: o.nextSeq})
		evs = append(evs, LinkEvent{
			Kind: LinkGaveUp, Peer: to, Err: o.lastErr, Attempts: r.opts.RetryBudget,
			Messages: len(dropped), Fires: countFires(dropped),
		})
		r.mu.Unlock()
		r.emit(evs)
		return
	}
	// Each retransmission round re-stamps the current outbox base, so a
	// receiver that lost its link state (a process restart) can adopt the
	// sender's position instead of waiting for retired messages.
	base := o.q[0].seq
	batch := make([]relMsg, len(o.q))
	for i, e := range o.q {
		batch[i] = relMsg{seq: e.seq, m: withBase(e.m, base)}
	}
	o.mRetries.Add(uint64(len(batch)))
	evs = append(evs, LinkEvent{
		Kind: LinkRetry, Peer: to, Err: o.lastErr, Attempts: o.attempts,
		Messages: len(batch), Fires: countFires(batch),
	})
	r.scheduleLocked(to, o)
	inner := r.inner
	r.mu.Unlock()
	if inner != nil {
		for _, e := range batch {
			if err := inner.Send(to, e.m); err != nil {
				r.mu.Lock()
				o.lastErr = err
				r.mu.Unlock()
				break // link is down; the next round retries from the ack point
			}
		}
	}
	r.emit(evs)
}

// Deliver is the inbound path: raw endpoints route their receive callback
// here.  Data messages are deduplicated and released in sequence order;
// acks retire outbox entries.  Transports invoke receive callbacks
// serially per sender (the Network contract), which Deliver relies on to
// keep per-link delivery FIFO.
func (r *ReliableEndpoint) Deliver(m Message) {
	if m.Kind == relAckKind {
		r.handleAck(m)
		return
	}
	seqStr, ok := m.Payload[relSeqKey]
	if !ok {
		// A peer without the reliability layer: pass through unchanged.
		r.recv(m)
		return
	}
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil {
		return
	}
	epoch, _ := strconv.ParseUint(m.Payload[relEpochKey], 10, 64)
	base, _ := strconv.ParseUint(m.Payload[relBaseKey], 10, 64)
	from := m.From
	r.mu.Lock()
	fresh := r.in[from] == nil
	in := r.inLink(from)
	if fresh {
		in.epoch = epoch
	}
	prevEpoch, prevNext := in.epoch, in.next
	if epoch < in.epoch {
		// A straggler from a sender incarnation that has since restarted.
		r.mu.Unlock()
		return
	}
	if epoch > in.epoch {
		// The sender restarted: a fresh stream with fresh numbering.
		in.epoch = epoch
		in.next = 0
		in.hold = map[uint64]Message{}
	}
	if base > in.next {
		// Everything below the sender's outbox base was acked (to a
		// previous incarnation of this receiver) and will never be resent:
		// fast-forward instead of waiting forever.
		in.next = base
		for s := range in.hold {
			if s < base {
				delete(in.hold, s)
			}
		}
	}
	var deliver []Message
	for {
		held, ok := in.hold[in.next]
		if !ok {
			break
		}
		delete(in.hold, in.next)
		deliver = append(deliver, stripSeq(held))
		in.next++
	}
	switch {
	case seq < in.next:
		// Duplicate of an already-delivered message (retransmit after a
		// lost ack, or a duplicating link): drop, but re-ack below so the
		// sender can retire it.
		in.mDups.Inc()
	case seq == in.next:
		deliver = append(deliver, stripSeq(m))
		in.next++
		for {
			held, ok := in.hold[in.next]
			if !ok {
				break
			}
			delete(in.hold, in.next)
			deliver = append(deliver, stripSeq(held))
			in.next++
		}
	default:
		// A gap: buffer for in-order release; the sender's go-back-N
		// retransmit will fill the hole even if this copy is evicted.
		if len(in.hold) < r.opts.OutboxLimit {
			in.hold[seq] = m
			in.mHeld.Inc()
		} else {
			// Eviction at the cap is deterministic (the arriving copy is
			// discarded, held ones stay) and counted — bounded RSS must not
			// mean silent loss in the books, even though go-back-N will
			// resend this copy.
			r.met.holdDropped.Inc()
		}
	}
	if in.epoch != prevEpoch || in.next != prevNext || fresh {
		// The dedup cursor moved (or the link is new): journal it so a
		// restarted receiver keeps discarding retransmits it already
		// processed instead of re-executing them.
		r.journalLocked(jIn, jInRec{Peer: from, Epoch: in.epoch, Next: in.next})
		r.maybeCheckpointLocked()
	}
	ack := in.next
	inner := r.inner
	r.mu.Unlock()
	for _, d := range deliver {
		r.recv(d)
	}
	if inner != nil {
		inner.Send(from, Message{
			Kind:    relAckKind,
			Payload: map[string]string{relAckKey: strconv.FormatUint(ack, 10)},
		})
	}
}

// stripSeq removes the reliability metadata before delivery.
func stripSeq(m Message) Message {
	p := make(map[string]string, len(m.Payload))
	for k, v := range m.Payload {
		switch k {
		case relSeqKey, relBaseKey, relEpochKey:
		default:
			p[k] = v
		}
	}
	if len(p) == 0 {
		m.Payload = nil
	} else {
		m.Payload = p
	}
	return m
}

// withBase returns a transmission copy of a buffered message stamped with
// the sender's current outbox base.  The copy's payload is cloned so
// concurrent retransmission rounds never mutate a map a transport is
// still serialising.
func withBase(m Message, base uint64) Message {
	p := make(map[string]string, len(m.Payload)+1)
	for k, v := range m.Payload {
		p[k] = v
	}
	p[relBaseKey] = strconv.FormatUint(base, 10)
	m.Payload = p
	return m
}

// handleAck retires outbox entries below the cumulative ack point.
func (r *ReliableEndpoint) handleAck(m Message) {
	ack, err := strconv.ParseUint(m.Payload[relAckKey], 10, 64)
	if err != nil {
		return
	}
	peer := m.From
	r.mu.Lock()
	o := r.out[peer]
	if o == nil || ack > o.nextSeq {
		// No outbox, or an ack beyond anything this incarnation ever sent —
		// a receiver still acking a previous incarnation's stream.  Ignore;
		// the receiver resets on the next data message's higher epoch.
		r.mu.Unlock()
		return
	}
	n, fires := 0, 0
	for len(o.q) > 0 && o.q[0].seq < ack {
		if o.q[0].m.Kind == "fire" {
			fires++
		}
		o.q = o.q[1:]
		n++
	}
	var evs []LinkEvent
	if n > 0 {
		o.mAcked.Add(uint64(n))
		o.mDepth.Set(int64(len(o.q)))
		r.journalLocked(jAck, jAckRec{Peer: peer, Ack: ack})
		r.maybeCheckpointLocked()
		o.attempts = 0
		o.lastErr = nil
		if o.degraded {
			o.replayed += n
			o.mReplayed.Add(uint64(n))
			if len(o.q) == 0 {
				// The outage's backlog has fully replayed, in order: the
				// link has recovered.
				o.degraded = false
				evs = append(evs, LinkEvent{
					Kind: LinkRecovered, Peer: peer,
					Messages: o.replayed, Fires: fires,
				})
				o.replayed = 0
			}
		}
		if len(o.q) > 0 && o.timer != nil {
			// The link is alive again; collapse any long backoff.
			o.timer.Stop()
			o.timer = nil
			r.scheduleLocked(peer, o)
		}
	}
	r.mu.Unlock()
	r.emit(evs)
}

// Flush retransmits every buffered message immediately (scenario
// teardown; the retry schedule makes this optional).
func (r *ReliableEndpoint) Flush() error {
	r.mu.Lock()
	peers := make([]string, 0, len(r.out))
	for p, o := range r.out {
		if len(o.q) > 0 {
			peers = append(peers, p)
		}
	}
	r.mu.Unlock()
	for _, p := range peers {
		r.retry(p)
	}
	return nil
}

// Close implements Endpoint.
func (r *ReliableEndpoint) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	for _, o := range r.out {
		if o.timer != nil {
			o.timer.Stop()
			o.timer = nil
		}
	}
	// A clean detach checkpoints the journal so the next incarnation
	// recovers from a snapshot instead of replaying the whole log; after a
	// crash hook this is a no-op (the journal is already dead).
	r.checkpointLocked()
	inner := r.inner
	r.mu.Unlock()
	if inner != nil {
		return inner.Close()
	}
	return nil
}

var (
	_ Endpoint = (*ReliableEndpoint)(nil)
	_ Flusher  = (*ReliableEndpoint)(nil)
)
