// Incremental guarantee checking: Monitor discharges each obligation of
// a metric guarantee exactly once, while the trace still retains the
// obligation's full window, and accumulates the verdicts into running
// reports.  That is what makes trace compaction verdict-preserving: the
// monitor's Horizon() names the oldest instant any *pending* obligation
// can still look back to, so everything older can be folded away
// (trace.CompactBefore) without changing what Reports() will ever say.
//
// Only guarantees with a bounded window are admissible — the metric
// forms (4) and the §6 bounded guarantees.  The unbounded forms
// (Follows, Leads, StrictlyFollows, MonitorFlag, Periodic) may need
// arbitrarily old history, so Register rejects them: a deployment that
// wants both compaction and an unbounded guarantee has asked for a
// contradiction, and gets told so instead of a silently wrong verdict.
package guarantee

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
	"cmtk/internal/rule"
	"cmtk/internal/trace"
)

// Windowed is a guarantee whose obligations only ever examine a bounded
// interval of history: Window() is the guarantee's own time bound (κ).
// The retention lookback can exceed Window() — metric-leads obligations
// stay pending for κ and then look back κ — so compaction consumes
// Monitor.Horizon(), not Window(), to decide what is safe to fold.
type Windowed interface {
	Guarantee
	Window() time.Duration
}

// Window implements Windowed: obligations look back at most Kappa.
func (g MetricFollows) Window() time.Duration { return g.Kappa }

// Window implements Windowed: an anchor stays pending for Kappa.
func (g MetricLeads) Window() time.Duration { return g.Kappa }

// Window implements Windowed: a violation window longer than Kappa is
// decided the moment it exceeds Kappa; the open-window start is carried
// as state, not re-read from history.
func (g ExistsWithin) Window() time.Duration { return g.Kappa }

// Window implements Windowed: an invariant is decided at each state.
func (g Invariant) Window() time.Duration { return 0 }

// Monitor incrementally checks a set of windowed guarantees against a
// growing trace.  Advance processes newly decidable obligations;
// Horizon reports the oldest instant still needed; Reports renders the
// verdicts as if the trace ended now, matching what batch Check would
// have said on the full, uncompacted history.  Monitor is safe for
// concurrent use.
type Monitor struct {
	//cmlint:lockrank 10
	mu      sync.Mutex
	entries []*monEntry
	horizon time.Time
	ok      bool // horizon valid (at least one Advance saw events)
}

type monEntry struct {
	g   Windowed
	inc incremental
	rep Report
}

// incremental is the per-guarantee engine: advance discharges every
// obligation decidable with the trace ending at end, finish discharges
// the rest exactly as the batch checker would (called on a clone, so
// Reports stays non-destructive), and horizon names the oldest instant
// still needed after an advance at end.  The shared famIndex replaces
// each checker's own pairKeys pass, so one Advance walks the retained
// events once no matter how many guarantees are registered.
type incremental interface {
	advance(tr *trace.Trace, ix *famIndex, end time.Time, rep *Report)
	finish(tr *trace.Trace, ix *famIndex, end time.Time, rep *Report)
	horizon(end time.Time) time.Time
	clone() incremental
	marshal() (json.RawMessage, error)
	unmarshal(json.RawMessage) error
}

// famIndex is a one-pass snapshot of the item families observed in the
// trace (retained events plus the folded base), shared by every checker
// during one Advance or Reports call.  Folded writes stay discoverable
// because compaction folds them into Initial().
type famIndex struct {
	byBase map[string][]data.ItemName
}

func indexFamilies(tr *trace.Trace) *famIndex {
	ix := &famIndex{byBase: map[string][]data.ItemName{}}
	seen := map[string]bool{}
	add := func(n data.ItemName) {
		key := n.Key()
		if !seen[key] {
			seen[key] = true
			ix.byBase[n.Base] = append(ix.byBase[n.Base], n)
		}
	}
	for _, e := range tr.Events() {
		if e.Desc.Op.HasItem() {
			add(e.Desc.Item)
		}
	}
	for k := range tr.Initial() {
		if n, err := data.ParseItemName(k); err == nil {
			add(n)
		}
	}
	for _, ns := range ix.byBase {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Key() < ns[j].Key() })
	}
	return ix
}

// pairs mirrors pairKeys over the index: the argument keys observed on
// either base, united, in deterministic order.
func (ix *famIndex) pairs(xBase, yBase string) [][2]data.ItemName {
	keyArgs := map[string][]data.Value{}
	for _, n := range ix.byBase[xBase] {
		keyArgs[argsKey(n.Args)] = n.Args
	}
	for _, n := range ix.byBase[yBase] {
		keyArgs[argsKey(n.Args)] = n.Args
	}
	out := make([][2]data.ItemName, 0, len(keyArgs))
	for _, args := range keyArgs {
		out = append(out, [2]data.ItemName{
			{Base: xBase, Args: args},
			{Base: yBase, Args: args},
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Key() < out[j][0].Key() })
	return out
}

// NewMonitor returns an empty monitor.
func NewMonitor(gs ...Guarantee) (*Monitor, error) {
	m := &Monitor{}
	for _, g := range gs {
		if err := m.Register(g); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Register adds a guarantee to the monitor.  Guarantees without a
// bounded window are rejected: their verdicts can depend on arbitrarily
// old history, which is exactly what compaction folds away.
func (m *Monitor) Register(g Guarantee) error {
	w, ok := g.(Windowed)
	if !ok {
		return fmt.Errorf("guarantee: %s has no bounded window; it cannot be monitored incrementally (use batch Check on an uncompacted trace)", g.Name())
	}
	inc, err := newIncremental(w)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = append(m.entries, &monEntry{
		g:   w,
		inc: inc,
		rep: Report{Guarantee: g.Name(), Formula: g.Formula(), Holds: true},
	})
	return nil
}

func newIncremental(g Windowed) (incremental, error) {
	switch g := g.(type) {
	case MetricFollows:
		return &incMetricFollows{g: g, last: map[string]tlPos{}}, nil
	case MetricLeads:
		return &incMetricLeads{g: g, last: map[string]tlPos{}}, nil
	case ExistsWithin:
		return &incExistsWithin{g: g, pairs: map[string]*ewPairState{}}, nil
	case Invariant:
		return &incInvariant{g: g}, nil
	default:
		return nil, fmt.Errorf("guarantee: no incremental checker for %s", g.Name())
	}
}

// Advance processes every obligation that has become decidable and
// refreshes the retention horizon.  Call it before CompactBefore: the
// horizon is only safe for a fold once the obligations behind it have
// been discharged.
func (m *Monitor) Advance(tr *trace.Trace) {
	end := tr.End()
	if end.IsZero() {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ix := indexFamilies(tr)
	h := end
	for _, e := range m.entries {
		e.inc.advance(tr, ix, end, &e.rep)
		if eh := e.inc.horizon(end); eh.Before(h) {
			h = eh
		}
	}
	m.horizon, m.ok = h, true
}

// Horizon returns the oldest instant a pending obligation may still
// examine, as of the last Advance.  Events strictly older can be folded
// without changing any verdict.  ok is false before the first Advance
// that saw events.
func (m *Monitor) Horizon() (time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.horizon, m.ok
}

// Widest reports the largest registered guarantee window.
func (m *Monitor) Widest() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var w time.Duration
	for _, e := range m.entries {
		if k := e.g.Window(); k > w {
			w = k
		}
	}
	return w
}

// Reports renders the verdicts as if the trace ended now: accumulated
// obligations plus an end-of-trace pass on a clone of the pending
// state, so calling it never consumes obligations and the result equals
// what batch Check would report on the full history.
func (m *Monitor) Reports(tr *trace.Trace) []Report {
	end := tr.End()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Report, len(m.entries))
	var ix *famIndex
	if !end.IsZero() {
		ix = indexFamilies(tr)
	}
	for i, e := range m.entries {
		rep := e.rep
		rep.Violations = append([]string(nil), e.rep.Violations...)
		if ix != nil {
			e.inc.clone().finish(tr, ix, end, &rep)
		}
		out[i] = rep
	}
	return out
}

// monitorState is the wire form of Handoff/Resume: the re-registration
// path a fleet rebalance (or a cold start from checkpoint) uses to move
// pending obligations to a new monitor without re-reading history.
type monitorState struct {
	Entries []monEntryState `json:"entries"`
}

type monEntryState struct {
	Name    string          `json:"name"`
	Report  Report          `json:"report"`
	Horizon time.Time       `json:"horizon"`
	OK      bool            `json:"ok"`
	State   json.RawMessage `json:"state"`
}

// Handoff exports the monitor's pending state — per-guarantee markers,
// carried violation windows, and accumulated reports — for Resume on a
// monitor registered with the same guarantees.
func (m *Monitor) Handoff() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := monitorState{}
	for _, e := range m.entries {
		raw, err := e.inc.marshal()
		if err != nil {
			return nil, fmt.Errorf("guarantee: handoff %s: %w", e.g.Name(), err)
		}
		st.Entries = append(st.Entries, monEntryState{
			Name: e.g.Name(), Report: e.rep,
			Horizon: m.horizon, OK: m.ok, State: raw,
		})
	}
	return json.Marshal(st)
}

// Resume restores a Handoff into this monitor.  Every handed-off
// guarantee must already be Registered here (matched by Name); the
// restored markers mean re-registered windows pick up exactly where the
// exporting monitor stopped, never re-opening discharged obligations.
func (m *Monitor) Resume(raw []byte) error {
	var st monitorState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("guarantee: resume: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	byName := map[string]*monEntry{}
	for _, e := range m.entries {
		byName[e.g.Name()] = e
	}
	for _, es := range st.Entries {
		e, ok := byName[es.Name]
		if !ok {
			return fmt.Errorf("guarantee: resume: %s is not registered on this monitor", es.Name)
		}
		if err := e.inc.unmarshal(es.State); err != nil {
			return fmt.Errorf("guarantee: resume %s: %w", es.Name, err)
		}
		e.rep = es.Report
		if es.OK {
			if !m.ok || es.Horizon.Before(m.horizon) {
				m.horizon = es.Horizon
			}
			m.ok = true
		}
	}
	return nil
}

// EqualVerdicts reports whether two report sets agree guarantee by
// guarantee on verdict, obligation count, and violation set.  Violation
// order may differ between the batch checker (per pair) and the monitor
// (per event), so violations compare as sorted multisets.
func EqualVerdicts(a, b []Report) bool {
	if len(a) != len(b) {
		return false
	}
	index := map[string]Report{}
	for _, r := range a {
		index[r.Guarantee] = r
	}
	for _, r := range b {
		o, ok := index[r.Guarantee]
		if !ok || o.Holds != r.Holds || o.Checked != r.Checked || len(o.Violations) != len(r.Violations) {
			return false
		}
		va := append([]string(nil), o.Violations...)
		vb := append([]string(nil), r.Violations...)
		sort.Strings(va)
		sort.Strings(vb)
		for i := range va {
			if va[i] != vb[i] {
				return false
			}
		}
	}
	return true
}

// tlPos marks the last processed sample of one pair's anchor timeline;
// Set distinguishes "nothing processed" from the zero position, so the
// initial-value sample (zero time, seq 0) is processed exactly once.
type tlPos struct {
	At  time.Time `json:"at"`
	Seq uint64    `json:"seq"`
	Set bool      `json:"set"`
}

func (p tlPos) before(s trace.Sample) bool {
	if !p.Set {
		return true
	}
	if !p.At.Equal(s.At) {
		return p.At.Before(s.At)
	}
	return p.Seq < s.Seq
}

// unprocessed returns the suffix of tl strictly after marker p.
func unprocessed(tl []trace.Sample, p tlPos) []trace.Sample {
	i := sort.Search(len(tl), func(i int) bool { return p.before(tl[i]) })
	return tl[i:]
}

// incMetricFollows discharges each Y anchor once its instant is settled
// (strictly before the trace end): the matching X interval either
// already overlaps the anchor's window or extends to the present, and
// in both cases later events cannot change the answer.
type incMetricFollows struct {
	g    MetricFollows
	last map[string]tlPos
}

// check decides one anchor exactly as MetricFollows.Check does, with
// the trace ending at end.
func (c *incMetricFollows) check(xtl []trace.Sample, ys trace.Sample, end time.Time, rep *Report) {
	rep.Checked++
	from := ys.At.Add(-c.g.Kappa)
	ok := false
	for i, xs := range xtl {
		intEnd := end
		if i+1 < len(xtl) {
			intEnd = xtl[i+1].At
		}
		if !xs.V.Equal(ys.V) {
			continue
		}
		if xs.At.After(ys.At) {
			break
		}
		if intEnd.After(from) {
			ok = true
			break
		}
	}
	if !ok {
		rep.violate("%s held %s at %s but %s did not hold it within %s before",
			c.g.Y, ys.V, ys.At.Format(time.TimeOnly), c.g.X, c.g.Kappa)
	}
}

func (c *incMetricFollows) run(tr *trace.Trace, ix *famIndex, end time.Time, rep *Report, settled func(trace.Sample) bool, mark bool) {
	for _, pair := range ix.pairs(c.g.X, c.g.Y) {
		x, y := pair[0], pair[1]
		key := y.Key()
		pending := unprocessed(tr.Timeline(y), c.last[key])
		var xtl []trace.Sample
		for _, ys := range pending {
			if !settled(ys) {
				break
			}
			if mark {
				c.last[key] = tlPos{At: ys.At, Seq: ys.Seq, Set: true}
			}
			if ys.V.IsNull() {
				continue
			}
			if xtl == nil {
				xtl = tr.Timeline(x)
			}
			c.check(xtl, ys, end, rep)
		}
	}
}

func (c *incMetricFollows) advance(tr *trace.Trace, ix *famIndex, end time.Time, rep *Report) {
	// An anchor strictly before end is settled: if the matching X
	// interval is still open its overlap with (anchor−κ, anchor] can only
	// grow, so deciding it against the current end equals deciding it
	// against any later one.
	c.run(tr, ix, end, rep, func(s trace.Sample) bool { return s.At.Before(end) }, true)
}

func (c *incMetricFollows) finish(tr *trace.Trace, ix *famIndex, end time.Time, rep *Report) {
	c.run(tr, ix, end, rep, func(trace.Sample) bool { return true }, false)
}

func (c *incMetricFollows) horizon(end time.Time) time.Time { return end.Add(-c.g.Kappa) }

func (c *incMetricFollows) clone() incremental {
	out := &incMetricFollows{g: c.g, last: make(map[string]tlPos, len(c.last))}
	for k, v := range c.last {
		out.last[k] = v
	}
	return out
}

func (c *incMetricFollows) marshal() (json.RawMessage, error) { return json.Marshal(c.last) }
func (c *incMetricFollows) unmarshal(raw json.RawMessage) error {
	return json.Unmarshal(raw, &c.last)
}

// incMetricLeads discharges each X anchor once its deadline has passed:
// every Y sample that could satisfy it is already in the trace (commit
// stamps are nondecreasing), so the verdict is final.
type incMetricLeads struct {
	g    MetricLeads
	last map[string]tlPos
}

func (c *incMetricLeads) check(ytl []trace.Sample, xs trace.Sample, rep *Report) {
	rep.Checked++
	deadline := xs.At.Add(c.g.Kappa)
	ok := false
	for _, ys := range unprocessed(ytl, tlPos{At: xs.At, Seq: xs.Seq, Set: true}) {
		if ys.At.After(deadline) {
			break
		}
		if ys.V.Equal(xs.V) {
			ok = true
			break
		}
	}
	if !ok {
		rep.violate("%s took %s at %s; %s did not reflect it within %s",
			c.g.X, xs.V, xs.At.Format(time.TimeOnly), c.g.Y, c.g.Kappa)
	}
}

func (c *incMetricLeads) run(tr *trace.Trace, ix *famIndex, end time.Time, rep *Report, settled func(trace.Sample) bool, mark bool) {
	for _, pair := range ix.pairs(c.g.X, c.g.Y) {
		x, y := pair[0], pair[1]
		key := x.Key()
		pending := unprocessed(tr.Timeline(x), c.last[key])
		var ytl []trace.Sample
		for _, xs := range pending {
			if !settled(xs) {
				break
			}
			if mark {
				c.last[key] = tlPos{At: xs.At, Seq: xs.Seq, Set: true}
			}
			if xs.V.IsNull() {
				continue
			}
			if ytl == nil {
				ytl = tr.Timeline(y)
			}
			c.check(ytl, xs, rep)
		}
	}
}

func (c *incMetricLeads) advance(tr *trace.Trace, ix *famIndex, end time.Time, rep *Report) {
	// Settled once the deadline is strictly past: no event at or after
	// end can carry a stamp inside (anchor, anchor+κ] any more.
	c.run(tr, ix, end, rep, func(s trace.Sample) bool { return s.At.Add(c.g.Kappa).Before(end) }, true)
}

func (c *incMetricLeads) finish(tr *trace.Trace, ix *famIndex, end time.Time, rep *Report) {
	// Batch semantics at end-of-trace: anchors whose window extends past
	// the end stay unchecked (their propagation window is still open).
	horizon := end.Add(-c.g.Kappa)
	c.run(tr, ix, end, rep, func(s trace.Sample) bool { return !s.At.After(horizon) }, false)
}

// horizon: pending anchors sit within κ of the end, and deciding one
// looks back at most κ from its own instant.
func (c *incMetricLeads) horizon(end time.Time) time.Time { return end.Add(-2 * c.g.Kappa) }

func (c *incMetricLeads) clone() incremental {
	out := &incMetricLeads{g: c.g, last: make(map[string]tlPos, len(c.last))}
	for k, v := range c.last {
		out.last[k] = v
	}
	return out
}

func (c *incMetricLeads) marshal() (json.RawMessage, error) { return json.Marshal(c.last) }
func (c *incMetricLeads) unmarshal(raw json.RawMessage) error {
	return json.Unmarshal(raw, &c.last)
}

// ewPairState carries one pair's open violation window across advances
// (and across Handoff): the window start is a carried instant, so the
// events that opened it can be folded away without losing it.
type ewPairState struct {
	RefKey    string    `json:"ref"`
	TgtKey    string    `json:"tgt"`
	InViol    bool      `json:"in_viol"`
	ViolStart time.Time `json:"viol_start"`
}

// incExistsWithin tracks the violation predicate E(ref) ∧ ¬E(tgt) per
// pair through the event stream.  Only writes to a pair's own items can
// flip the predicate, so events dispatch by item key instead of every
// pair re-walking every event.
type incExistsWithin struct {
	g       ExistsWithin
	pairs   map[string]*ewPairState // pair key -> carried window
	lastSeq uint64
	haveSeq bool
	byItem  map[string][]*ewPairState // item key -> affected pairs (rebuilt, not serialized)
}

func (c *incExistsWithin) syncPairs(tr *trace.Trace, ix *famIndex, rep *Report) {
	changed := c.byItem == nil
	for _, pair := range ix.pairs(c.g.Ref, c.g.Target) {
		key := pair[0].Key()
		if _, ok := c.pairs[key]; ok {
			continue
		}
		st := &ewPairState{RefKey: pair[0].Key(), TgtKey: pair[1].Key()}
		c.pairs[key] = st
		rep.Checked++
		// The initial consider: before its first retained event the pair's
		// items hold their base values.
		c.consider(st, time.Time{}, tr.Initial(), rep)
		changed = true
	}
	if changed {
		c.byItem = map[string][]*ewPairState{}
		for _, st := range c.pairs {
			c.byItem[st.RefKey] = append(c.byItem[st.RefKey], st)
			if st.TgtKey != st.RefKey {
				c.byItem[st.TgtKey] = append(c.byItem[st.TgtKey], st)
			}
		}
	}
}

// hasKey is Interpretation.Has over a pre-rendered item key.
func hasKey(in data.Interpretation, key string) bool {
	v, ok := in[key]
	return ok && !v.IsNull()
}

func (c *incExistsWithin) consider(st *ewPairState, at time.Time, in data.Interpretation, rep *Report) {
	bad := hasKey(in, st.RefKey) && !hasKey(in, st.TgtKey)
	switch {
	case bad && !st.InViol:
		st.InViol = true
		st.ViolStart = at
	case !bad && st.InViol:
		st.InViol = false
		if at.Sub(st.ViolStart) > c.g.Kappa {
			rep.violate("%s existed without %s for %s starting %s",
				st.RefKey, st.TgtKey, at.Sub(st.ViolStart), st.ViolStart.Format(time.TimeOnly))
		}
	}
}

func (c *incExistsWithin) advance(tr *trace.Trace, ix *famIndex, end time.Time, rep *Report) {
	c.syncPairs(tr, ix, rep)
	tr.WalkNewStates(func(e *event.Event, in data.Interpretation) bool {
		if c.haveSeq && e.Seq <= c.lastSeq {
			return true
		}
		c.lastSeq, c.haveSeq = e.Seq, true
		if !e.Desc.Op.IsWrite() {
			return true
		}
		for _, st := range c.byItem[e.Desc.Item.Key()] {
			c.consider(st, e.Time, in, rep)
		}
		return true
	})
}

func (c *incExistsWithin) finish(tr *trace.Trace, ix *famIndex, end time.Time, rep *Report) {
	c.advance(tr, ix, end, rep)
	for _, key := range sortedPairKeys(c.pairs) {
		st := c.pairs[key]
		if st.InViol && end.Sub(st.ViolStart) > c.g.Kappa {
			rep.violate("%s existed without %s for %s starting %s (unresolved at end of trace)",
				st.RefKey, st.TgtKey, end.Sub(st.ViolStart), st.ViolStart.Format(time.TimeOnly))
		}
	}
}

func (c *incExistsWithin) horizon(end time.Time) time.Time { return end.Add(-c.g.Kappa) }

func (c *incExistsWithin) clone() incremental {
	out := &incExistsWithin{g: c.g, pairs: map[string]*ewPairState{}, lastSeq: c.lastSeq, haveSeq: c.haveSeq}
	for k, v := range c.pairs {
		cp := *v
		out.pairs[k] = &cp
	}
	return out
}

type ewWire struct {
	Pairs   map[string]*ewPairState `json:"pairs"`
	LastSeq uint64                  `json:"last_seq"`
	HaveSeq bool                    `json:"have_seq"`
}

func (c *incExistsWithin) marshal() (json.RawMessage, error) {
	return json.Marshal(ewWire{Pairs: c.pairs, LastSeq: c.lastSeq, HaveSeq: c.haveSeq})
}

func (c *incExistsWithin) unmarshal(raw json.RawMessage) error {
	var w ewWire
	if err := json.Unmarshal(raw, &w); err != nil {
		return err
	}
	if w.Pairs == nil {
		w.Pairs = map[string]*ewPairState{}
	}
	c.pairs, c.lastSeq, c.haveSeq = w.Pairs, w.LastSeq, w.HaveSeq
	c.byItem = nil // rebuilt on next syncPairs
	return nil
}

func sortedPairKeys(m map[string]*ewPairState) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// incInvariant evaluates the predicate at the initial state and after
// every event, exactly once per event: the obligation at each state is
// decided on the spot, so the invariant needs no retained history at
// all.
type incInvariant struct {
	g       Invariant
	started bool
	lastSeq uint64
	haveSeq bool
}

func (c *incInvariant) evalAt(at time.Time, in data.Interpretation, rep *Report) {
	rep.Checked++
	ok, err := rule.EvalBool(c.g.Pred, envOf(in))
	if err != nil {
		rep.violate("evaluation error at %s: %v", at.Format(time.TimeOnly), err)
		return
	}
	if !ok {
		rep.violate("invariant false at %s in state %s", at.Format(time.TimeOnly), in)
	}
}

func (c *incInvariant) advance(tr *trace.Trace, ix *famIndex, end time.Time, rep *Report) {
	if !c.started {
		c.started = true
		c.evalAt(time.Time{}, tr.Initial(), rep)
	}
	tr.WalkNewStates(func(e *event.Event, in data.Interpretation) bool {
		if c.haveSeq && e.Seq <= c.lastSeq {
			return true
		}
		c.lastSeq, c.haveSeq = e.Seq, true
		c.evalAt(e.Time, in, rep)
		return true
	})
}

func (c *incInvariant) finish(tr *trace.Trace, ix *famIndex, end time.Time, rep *Report) {
	c.advance(tr, ix, end, rep)
}

func (c *incInvariant) horizon(end time.Time) time.Time { return end }

func (c *incInvariant) clone() incremental {
	cp := *c
	return &cp
}

type invWire struct {
	Started bool   `json:"started"`
	LastSeq uint64 `json:"last_seq"`
	HaveSeq bool   `json:"have_seq"`
}

func (c *incInvariant) marshal() (json.RawMessage, error) {
	return json.Marshal(invWire{Started: c.started, LastSeq: c.lastSeq, HaveSeq: c.haveSeq})
}

func (c *incInvariant) unmarshal(raw json.RawMessage) error {
	var w invWire
	if err := json.Unmarshal(raw, &w); err != nil {
		return err
	}
	c.started, c.lastSeq, c.haveSeq = w.Started, w.LastSeq, w.HaveSeq
	return nil
}
