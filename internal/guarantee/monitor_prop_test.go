package guarantee

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
	"cmtk/internal/trace"
)

// TestHorizonProperty is the retention-safety property test: whatever
// random execution runs and whatever bounded windows are registered
// (including κ=0 and zero-window invariants), folding everything before
// Monitor.Horizon() after every advance never changes a verdict —
// equivalently, no pruned event could still have participated in any
// pending guarantee window.  Each iteration replays one random workload
// twice: an unpruned control checked in batch, and an adversarially
// compacted arm checked by the monitor, optionally with a mid-run
// handoff to a re-registered monitor (the rebalance path).
func TestHorizonProperty(t *testing.T) {
	bases := []string{"X", "Y", "Z"}
	items := make([]data.ItemName, len(bases))
	for i, b := range bases {
		items[i] = data.Item(b)
	}
	for iter := 0; iter < 60; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("iter=%d", iter), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + iter)))

			// Random bounded guarantee set; κ=0 and duplicate pairs on
			// purpose.
			kappas := []time.Duration{0, time.Second, 3 * time.Second, 7 * time.Second}
			gs := []Guarantee{
				MetricFollows{X: "X", Y: "Y", Kappa: kappas[rng.Intn(len(kappas))]},
				MetricLeads{X: "X", Y: "Y", Kappa: kappas[rng.Intn(len(kappas))]},
				ExistsWithin{Ref: "Y", Target: "Z", Kappa: kappas[rng.Intn(len(kappas))]},
			}

			// Random workload: mostly propagate X→Y→Z with jittered lag,
			// sometimes invent values or stall propagation so violated
			// executions are exercised too.  Time advances in whole-second
			// steps with occasional same-instant bursts.
			control := trace.New(nil)
			sec := 0
			appendW := func(tr *trace.Trace, s int, item data.ItemName, v int64) {
				tr.Append(&event.Event{Time: at(s), Site: "s", Desc: event.W(item, data.NewInt(v))})
			}
			type rec struct {
				s    int
				item data.ItemName
				v    int64
			}
			var script []rec
			for i := 0; i < 80+rng.Intn(80); i++ {
				v := int64(rng.Intn(8))
				script = append(script, rec{sec, items[0], v})
				if rng.Intn(10) > 0 { // usually propagate
					lag := rng.Intn(4)
					script = append(script, rec{sec + lag, items[1], v})
					if rng.Intn(4) > 0 {
						script = append(script, rec{sec + lag + rng.Intn(3), items[2], v})
					}
				}
				if rng.Intn(12) == 0 { // invented value on Y
					script = append(script, rec{sec + 1, items[1], 100 + int64(rng.Intn(5))})
				}
				sec += 1 + rng.Intn(3)
			}
			// Script times must be nondecreasing for replay.
			for i := 1; i < len(script); i++ {
				if script[i].s < script[i-1].s {
					script[i].s = script[i-1].s
				}
			}
			for _, r := range script {
				appendW(control, r.s, r.item, r.v)
			}
			want := CheckAll(control, gs...)

			// Compacted arm: advance + fold exactly at the horizon every
			// few events; optionally hand off mid-run.
			m, err := NewMonitor(gs...)
			if err != nil {
				t.Fatal(err)
			}
			tr := trace.New(nil)
			handoffAt := -1
			if rng.Intn(2) == 0 {
				handoffAt = rng.Intn(len(script))
			}
			cadence := 1 + rng.Intn(9)
			for i, r := range script {
				appendW(tr, r.s, r.item, r.v)
				if i == handoffAt {
					blob, err := m.Handoff()
					if err != nil {
						t.Fatal(err)
					}
					m2, err := NewMonitor(gs...)
					if err != nil {
						t.Fatal(err)
					}
					if err := m2.Resume(blob); err != nil {
						t.Fatal(err)
					}
					m = m2
				}
				if (i+1)%cadence == 0 {
					m.Advance(tr)
					if h, ok := m.Horizon(); ok {
						before := tr.BaseSeq()
						stats := tr.CompactBefore(h, 0)
						// The fold must be a prefix strictly older than the
						// horizon: no pruned event could participate in a
						// pending window.
						if stats.PrunedEvents > 0 && !stats.CutTime.Before(h) {
							t.Fatalf("pruned up to %v, horizon %v", stats.CutTime, h)
						}
						if stats.CutSeq < before {
							t.Fatal("cut moved backwards")
						}
					}
				}
			}
			got := m.Reports(tr)
			if !EqualVerdicts(want, got) {
				t.Fatalf("verdicts diverged (cadence=%d handoff=%d):\nbatch:   %+v\nmonitor: %+v",
					cadence, handoffAt, want, got)
			}
		})
	}
}
