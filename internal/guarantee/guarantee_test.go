package guarantee

import (
	"math/rand"
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
	"cmtk/internal/rule"
	"cmtk/internal/trace"
	"cmtk/internal/vclock"
)

var (
	itemX = data.Item("X")
	itemY = data.Item("Y")
)

func at(s int) time.Time { return vclock.Epoch.Add(time.Duration(s) * time.Second) }

func write(tr *trace.Trace, sec int, item data.ItemName, v data.Value) {
	tr.Append(&event.Event{Time: at(sec), Site: "s", Desc: event.W(item, v)})
}

// propagated builds a trace where every X write is copied to Y after lag
// seconds: the well-behaved notify+write scenario.
func propagated(vals []int64, lag int) *trace.Trace {
	tr := trace.New(nil)
	for i, v := range vals {
		write(tr, i*10, itemX, data.NewInt(v))
		write(tr, i*10+lag, itemY, data.NewInt(v))
	}
	// Horizon event.
	write(tr, len(vals)*10+100, data.Item("Z"), data.NewInt(0))
	return tr
}

func TestFollowsHolds(t *testing.T) {
	tr := propagated([]int64{1, 2, 3}, 3)
	rep := Follows{X: "X", Y: "Y"}.Check(tr)
	if !rep.Holds || rep.Checked == 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestFollowsViolated(t *testing.T) {
	tr := trace.New(nil)
	write(tr, 0, itemX, data.NewInt(1))
	write(tr, 1, itemY, data.NewInt(99)) // Y invents a value
	rep := Follows{X: "X", Y: "Y"}.Check(tr)
	if rep.Holds {
		t.Fatalf("follows held: %+v", rep)
	}
}

func TestFollowsInitialValueCounts(t *testing.T) {
	// Y starts equal to X's initial value: no violation.
	init := data.Interpretation{"X": data.NewInt(5), "Y": data.NewInt(5)}
	tr := trace.New(init)
	write(tr, 1, itemX, data.NewInt(6))
	write(tr, 2, itemY, data.NewInt(6))
	rep := Follows{X: "X", Y: "Y"}.Check(tr)
	if !rep.Holds {
		t.Fatalf("report: %+v", rep)
	}
}

func TestLeadsHolds(t *testing.T) {
	tr := propagated([]int64{1, 2, 3}, 3)
	rep := Leads{X: "X", Y: "Y", Settle: 10 * time.Second}.Check(tr)
	if !rep.Holds || rep.Checked != 3 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestLeadsViolatedByMissedUpdate(t *testing.T) {
	// X takes 1,2,3 but only 1 and 3 reach Y (polling missed 2).
	tr := trace.New(nil)
	write(tr, 0, itemX, data.NewInt(1))
	write(tr, 5, itemY, data.NewInt(1))
	write(tr, 10, itemX, data.NewInt(2))
	write(tr, 11, itemX, data.NewInt(3))
	write(tr, 15, itemY, data.NewInt(3))
	write(tr, 1000, data.Item("Z"), data.NewInt(0))
	rep := Leads{X: "X", Y: "Y", Settle: 60 * time.Second}.Check(tr)
	if rep.Holds {
		t.Fatalf("leads held despite missed update: %+v", rep)
	}
}

func TestLeadsSettleExcusesPending(t *testing.T) {
	tr := trace.New(nil)
	write(tr, 0, itemX, data.NewInt(1))
	// No propagation, but trace ends immediately: within settle.
	rep := Leads{X: "X", Y: "Y", Settle: 60 * time.Second}.Check(tr)
	if !rep.Holds {
		t.Fatalf("report: %+v", rep)
	}
}

func TestStrictlyFollowsHolds(t *testing.T) {
	tr := propagated([]int64{1, 2, 3, 2}, 3)
	rep := StrictlyFollows{X: "X", Y: "Y"}.Check(tr)
	if !rep.Holds {
		t.Fatalf("report: %+v", rep)
	}
}

func TestStrictlyFollowsViolatedByReorder(t *testing.T) {
	tr := trace.New(nil)
	write(tr, 0, itemX, data.NewInt(1))
	write(tr, 1, itemX, data.NewInt(2))
	// Y sees them out of order.
	write(tr, 5, itemY, data.NewInt(2))
	write(tr, 6, itemY, data.NewInt(1))
	rep := StrictlyFollows{X: "X", Y: "Y"}.Check(tr)
	if rep.Holds {
		t.Fatalf("strict order held despite reorder: %+v", rep)
	}
	// Plain follows still holds: both values were X's.
	if rep2 := (Follows{X: "X", Y: "Y"}).Check(tr); !rep2.Holds {
		t.Fatalf("follows should hold: %+v", rep2)
	}
}

func TestStrictlyFollowsSkippedValuesOK(t *testing.T) {
	// Y may miss values (polling) as long as order is preserved:
	// guarantee (3) holds under polling per Section 4.2.3.
	tr := trace.New(nil)
	write(tr, 0, itemX, data.NewInt(1))
	write(tr, 1, itemX, data.NewInt(2))
	write(tr, 2, itemX, data.NewInt(3))
	write(tr, 5, itemY, data.NewInt(1))
	write(tr, 6, itemY, data.NewInt(3))
	rep := StrictlyFollows{X: "X", Y: "Y"}.Check(tr)
	if !rep.Holds {
		t.Fatalf("report: %+v", rep)
	}
}

func TestMetricFollows(t *testing.T) {
	tr := propagated([]int64{1, 2, 3}, 3)
	if rep := (MetricFollows{X: "X", Y: "Y", Kappa: 5 * time.Second}).Check(tr); !rep.Holds {
		t.Fatalf("kappa=5s: %+v", rep)
	}
	// With kappa=1s the 3s lag is too stale... but note X still holds the
	// value at propagation time (interval overlap), so it holds.
	if rep := (MetricFollows{X: "X", Y: "Y", Kappa: time.Second}).Check(tr); !rep.Holds {
		t.Fatalf("kappa=1s with overlapping interval: %+v", rep)
	}
}

func TestMetricFollowsViolatedByStaleValue(t *testing.T) {
	tr := trace.New(nil)
	write(tr, 0, itemX, data.NewInt(1))
	write(tr, 10, itemX, data.NewInt(2))  // X moves on at t=10
	write(tr, 100, itemY, data.NewInt(1)) // Y picks up the old value at t=100
	rep := MetricFollows{X: "X", Y: "Y", Kappa: 5 * time.Second}.Check(tr)
	if rep.Holds {
		t.Fatalf("metric follows held for stale value: %+v", rep)
	}
}

func TestMetricLeads(t *testing.T) {
	tr := propagated([]int64{1, 2, 3}, 3)
	if rep := (MetricLeads{X: "X", Y: "Y", Kappa: 5 * time.Second}).Check(tr); !rep.Holds {
		t.Fatalf("kappa=5s: %+v", rep)
	}
	if rep := (MetricLeads{X: "X", Y: "Y", Kappa: 2 * time.Second}).Check(tr); rep.Holds {
		t.Fatalf("kappa=2s held despite 3s lag: %+v", rep)
	}
}

func TestParameterizedFamilyGuarantee(t *testing.T) {
	// salary1(n) = salary2(n) for all n: one key propagates, the other is
	// lost.
	e7 := data.NewString("e7")
	e9 := data.NewString("e9")
	tr := trace.New(nil)
	write(tr, 0, data.Item("salary1", e7), data.NewInt(100))
	write(tr, 2, data.Item("salary2", e7), data.NewInt(100))
	write(tr, 5, data.Item("salary1", e9), data.NewInt(200))
	write(tr, 1000, data.Item("Z"), data.NewInt(0))
	follows := Follows{X: "salary1", Y: "salary2"}.Check(tr)
	if !follows.Holds {
		t.Fatalf("follows: %+v", follows)
	}
	leads := Leads{X: "salary1", Y: "salary2", Settle: 60 * time.Second}.Check(tr)
	if leads.Holds {
		t.Fatalf("leads held despite lost e9 update: %+v", leads)
	}
}

func TestInvariant(t *testing.T) {
	pred, err := rule.ParseExpr("X <= Y")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(data.Interpretation{"X": data.NewInt(0), "Y": data.NewInt(10)})
	write(tr, 1, itemX, data.NewInt(5))
	write(tr, 2, itemY, data.NewInt(20))
	rep := Invariant{Label: "X<=Y", Pred: pred}.Check(tr)
	if !rep.Holds {
		t.Fatalf("report: %+v", rep)
	}
	write(tr, 3, itemX, data.NewInt(99))
	rep = Invariant{Label: "X<=Y", Pred: pred}.Check(tr)
	if rep.Holds {
		t.Fatalf("invariant held after violation: %+v", rep)
	}
}

func TestExistsWithin(t *testing.T) {
	i1 := data.NewString("i1")
	g := ExistsWithin{Ref: "project", Target: "salary", Kappa: 10 * time.Second}
	// Violation window of 5s: inside kappa.
	tr := trace.New(nil)
	write(tr, 0, data.Item("project", i1), data.NewInt(1))
	write(tr, 5, data.Item("salary", i1), data.NewInt(100))
	write(tr, 100, data.Item("Z"), data.NewInt(0))
	if rep := g.Check(tr); !rep.Holds {
		t.Fatalf("5s window violated 10s kappa: %+v", rep)
	}
	// Violation window of 20s: exceeds kappa.
	tr2 := trace.New(nil)
	write(tr2, 0, data.Item("project", i1), data.NewInt(1))
	write(tr2, 20, data.Item("salary", i1), data.NewInt(100))
	write(tr2, 100, data.Item("Z"), data.NewInt(0))
	if rep := g.Check(tr2); rep.Holds {
		t.Fatalf("20s window passed 10s kappa: %+v", rep)
	}
	// Orphan resolved by deleting the project record (write null).
	tr3 := trace.New(nil)
	write(tr3, 0, data.Item("project", i1), data.NewInt(1))
	write(tr3, 8, data.Item("project", i1), data.NullValue)
	write(tr3, 100, data.Item("Z"), data.NewInt(0))
	if rep := g.Check(tr3); !rep.Holds {
		t.Fatalf("deletion did not resolve: %+v", rep)
	}
	// Unresolved at end of trace, longer than kappa.
	tr4 := trace.New(nil)
	write(tr4, 0, data.Item("project", i1), data.NewInt(1))
	write(tr4, 100, data.Item("Z"), data.NewInt(0))
	if rep := g.Check(tr4); rep.Holds {
		t.Fatalf("open violation passed: %+v", rep)
	}
}

func TestMonitorFlag(t *testing.T) {
	flag, tb := data.Item("Flag"), data.Item("Tb")
	g := MonitorFlag{Flag: flag, Tb: tb, X: itemX, Y: itemY, Kappa: 2 * time.Second}
	tr := trace.New(data.Interpretation{"X": data.NewInt(1), "Y": data.NewInt(1)})
	// CM observes equality from t=0, sets Tb=0 and Flag=true at t=5.
	write(tr, 5, tb, TimeValue(at(0)))
	write(tr, 5, flag, data.NewBool(true))
	if rep := g.Check(tr); !rep.Holds {
		t.Fatalf("monitor: %+v", rep)
	}
	// Now X diverges at t=10 while Flag stays true; a Flag=true state at
	// t=20 claims equality over [0, 18] — false.
	write(tr, 10, itemX, data.NewInt(2))
	write(tr, 20, tb, TimeValue(at(0)))
	if rep := g.Check(tr); rep.Holds {
		t.Fatalf("monitor held despite divergence: %+v", rep)
	}
}

func TestMonitorFlagKappaExcusesRecentDivergence(t *testing.T) {
	flag, tb := data.Item("Flag"), data.Item("Tb")
	g := MonitorFlag{Flag: flag, Tb: tb, X: itemX, Y: itemY, Kappa: 30 * time.Second}
	tr := trace.New(data.Interpretation{"X": data.NewInt(1), "Y": data.NewInt(1)})
	write(tr, 5, tb, TimeValue(at(0)))
	write(tr, 5, flag, data.NewBool(true))
	// X diverges at t=10; Flag still true at t=10..  The claim at t=10 is
	// equality over [0, -20] — an empty interval, so it holds.
	write(tr, 10, itemX, data.NewInt(2))
	if rep := g.Check(tr); !rep.Holds {
		t.Fatalf("monitor: %+v", rep)
	}
}

func TestPeriodic(t *testing.T) {
	pred, err := rule.ParseExpr("B1 = B2")
	if err != nil {
		t.Fatal(err)
	}
	// Window 17:15 -> 08:00 next day.
	g := Periodic{Label: "banking", Pred: pred, From: 17*time.Hour + 15*time.Minute, To: 8 * time.Hour}
	b1, b2 := data.Item("B1"), data.Item("B2")
	tr := trace.New(data.Interpretation{"B1": data.NewInt(0), "B2": data.NewInt(0)})
	// Daytime divergence at 10:00 (outside window): fine.
	tr.Append(&event.Event{Time: vclock.Epoch.Add(10 * time.Hour), Site: "s", Desc: event.W(b1, data.NewInt(5))})
	// Batch propagation at 17:10 (outside window): fine.
	tr.Append(&event.Event{Time: vclock.Epoch.Add(17*time.Hour + 10*time.Minute), Site: "s", Desc: event.W(b2, data.NewInt(5))})
	// Horizon next day 09:00.
	tr.Append(&event.Event{Time: vclock.Epoch.Add(33 * time.Hour), Site: "s", Desc: event.W(data.Item("Z"), data.NewInt(0))})
	if rep := g.Check(tr); !rep.Holds {
		t.Fatalf("periodic: %+v", rep)
	}
	// Divergence inside the window violates.
	tr.Append(&event.Event{Time: vclock.Epoch.Add(42 * time.Hour), Site: "s", Desc: event.W(b1, data.NewInt(9))})
	if rep := g.Check(tr); rep.Holds {
		t.Fatalf("periodic held despite in-window divergence: %+v", rep)
	}
}

func TestPeriodicWindowMath(t *testing.T) {
	g := Periodic{From: 17 * time.Hour, To: 8 * time.Hour}
	if !g.inWindow(vclock.Epoch.Add(18 * time.Hour)) {
		t.Error("18:00 not in 17:00-08:00 window")
	}
	if !g.inWindow(vclock.Epoch.Add(31 * time.Hour)) {
		t.Error("07:00 next day not in window")
	}
	if g.inWindow(vclock.Epoch.Add(12 * time.Hour)) {
		t.Error("12:00 in window")
	}
	day := Periodic{From: 9 * time.Hour, To: 17 * time.Hour}
	if !day.inWindow(vclock.Epoch.Add(10*time.Hour)) || day.inWindow(vclock.Epoch.Add(20*time.Hour)) {
		t.Error("non-wrapping window math broken")
	}
}

func TestCheckAllAndReportString(t *testing.T) {
	tr := propagated([]int64{1, 2}, 2)
	reports := CheckAll(tr,
		Follows{X: "X", Y: "Y"},
		Leads{X: "X", Y: "Y", Settle: 10 * time.Second},
		StrictlyFollows{X: "X", Y: "Y"},
	)
	if len(reports) != 3 || !AllHold(reports) {
		t.Fatalf("reports: %v", reports)
	}
	for _, r := range reports {
		if r.String() == "" || r.Formula == "" {
			t.Fatalf("bad report rendering: %+v", r)
		}
	}
	// A failing report renders VIOLATED.
	trBad := trace.New(nil)
	write(trBad, 0, itemY, data.NewInt(9))
	rep := Follows{X: "X", Y: "Y"}.Check(trBad)
	if rep.Holds || rep.String() == "" {
		t.Fatalf("bad violation rendering: %+v", rep)
	}
	if AllHold([]Report{rep}) {
		t.Fatal("AllHold true with violation")
	}
}

func TestTimeValueRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{0, time.Second, time.Hour, 26 * time.Hour} {
		v := TimeValue(vclock.Epoch.Add(d))
		got, ok := ValueTime(v)
		if !ok || !got.Equal(vclock.Epoch.Add(d)) {
			t.Fatalf("round trip %v -> %v, %v", d, got, ok)
		}
	}
	if _, ok := ValueTime(data.NewString("x")); ok {
		t.Fatal("string decoded as time")
	}
}

func TestViolationCap(t *testing.T) {
	tr := trace.New(nil)
	for i := 0; i < 100; i++ {
		write(tr, i, itemY, data.NewInt(int64(1000+i)))
	}
	rep := Follows{X: "X", Y: "Y"}.Check(tr)
	if rep.Holds {
		t.Fatal("held")
	}
	if len(rep.Violations) > maxViolations {
		t.Fatalf("violations uncapped: %d", len(rep.Violations))
	}
}

func TestParseGuarantees(t *testing.T) {
	cases := []struct {
		src  string
		want string // Name() of the parsed guarantee
	}{
		{"follows(salary1, salary2)", "follows(salary1,salary2)"},
		{"leads(salary1, salary2)", "leads(salary1,salary2)"},
		{"leads(salary1, salary2, 30s)", "leads(salary1,salary2)"},
		{"strictly-follows(x, y)", "strictly-follows(x,y)"},
		{"metric-follows(x, y, 15s)", "metric-follows(x,y,15s)"},
		{"metric-leads(x, y, 15s)", "metric-leads(x,y,15s)"},
		{"invariant(X <= Y)", "invariant(X <= Y)"},
		{"exists-within(project, salary, 24h)", "exists-within(project,salary,24h0m0s)"},
		{"periodic(B1 = B2, 17h15m, 8h)", "periodic(B1 = B2)"},
		{`monitor(Flag, Tb, X, Y, 10s)`, "monitor(X,Y)"},
	}
	for _, c := range cases {
		g, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if g.Name() != c.want {
			t.Errorf("Parse(%q).Name() = %q, want %q", c.src, g.Name(), c.want)
		}
		if g.Formula() == "" {
			t.Errorf("Parse(%q): empty formula", c.src)
		}
	}
}

func TestParseGuaranteeSemantics(t *testing.T) {
	// A parsed leads guarantee behaves like a constructed one.
	g, err := Parse("leads(X, Y, 60s)")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(nil)
	write(tr, 0, itemX, data.NewInt(1))
	write(tr, 5, itemY, data.NewInt(1))
	write(tr, 10, itemX, data.NewInt(2)) // never propagated
	write(tr, 1000, data.Item("Z"), data.NewInt(0))
	if rep := g.Check(tr); rep.Holds {
		t.Fatal("parsed leads missed the lost value")
	}
}

func TestParseGuaranteeErrors(t *testing.T) {
	bad := []string{
		"",
		"follows",
		"follows(x)",
		"follows(x, y, z)",
		"nosuch(x, y)",
		"metric-follows(x, y)",
		"metric-follows(x, y, nonsense)",
		"invariant(1 +)",
		"exists-within(a, b)",
		"periodic(X = Y, 1h)",
		"monitor(F, T, X, Y)",
		"leads(, y)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

// Property: for a replica that copies the primary with a fixed lag L,
// MetricLeads holds exactly when kappa >= L.
func TestQuickMetricLeadsThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		lag := time.Duration(rng.Intn(9)+1) * time.Second
		n := rng.Intn(8) + 2
		tr := trace.New(nil)
		for i := 0; i < n; i++ {
			base := i * 30
			write(tr, base, itemX, data.NewInt(int64(1000+i)))
			tr.Append(&event.Event{Time: at(base).Add(lag), Site: "s",
				Desc: event.W(itemY, data.NewInt(int64(1000+i)))})
		}
		write(tr, n*30+300, data.Item("Z"), data.NewInt(0))
		holds := MetricLeads{X: "X", Y: "Y", Kappa: lag}.Check(tr)
		if !holds.Holds {
			t.Fatalf("iter %d: kappa = lag = %v failed: %+v", iter, lag, holds)
		}
		fails := MetricLeads{X: "X", Y: "Y", Kappa: lag - time.Millisecond}.Check(tr)
		if fails.Holds && fails.Checked > 0 {
			t.Fatalf("iter %d: kappa just under lag %v held over %d obligations", iter, lag, fails.Checked)
		}
	}
}

// Property: follows and leads are duals on reversed roles — if Y copies X
// faithfully then follows(X,Y) holds, and follows(Y,X) holds only when X
// introduced no values Y missed... which with full copying means both
// directions only differ by the final pending value.
func TestQuickFollowsOnCopiedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		tr := trace.New(nil)
		count := rng.Intn(10) + 1
		for i := 0; i < count; i++ {
			v := data.NewInt(int64(rng.Intn(5)))
			write(tr, i*10, itemX, v)
			write(tr, i*10+1, itemY, v)
		}
		if rep := (Follows{X: "X", Y: "Y"}).Check(tr); !rep.Holds {
			t.Fatalf("iter %d: follows failed on a faithful copy: %+v", iter, rep)
		}
		if rep := (StrictlyFollows{X: "X", Y: "Y"}).Check(tr); !rep.Holds {
			t.Fatalf("iter %d: strictly-follows failed on a faithful copy: %+v", iter, rep)
		}
	}
}
