package guarantee

import (
	"fmt"
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
	"cmtk/internal/rule"
	"cmtk/internal/trace"
)

func monitoredSet() []Guarantee {
	pred, err := rule.ParseExpr("X >= 0")
	if err != nil {
		panic(err)
	}
	return []Guarantee{
		MetricFollows{X: "X", Y: "Y", Kappa: 5 * time.Second},
		MetricLeads{X: "X", Y: "Y", Kappa: 5 * time.Second},
		ExistsWithin{Ref: "X", Target: "Y", Kappa: 8 * time.Second},
		Invariant{Label: "x-nonneg", Pred: pred},
	}
}

// advanceEvery replays the source trace into a fresh one in chunks,
// advancing the monitor after each chunk; between chunks it compacts at
// the monitor's horizon (minus hold) when compact is set.  Returns the
// replayed trace.
func replayMonitored(t *testing.T, src *trace.Trace, m *Monitor, chunk int, compact bool) *trace.Trace {
	t.Helper()
	tr := trace.New(src.Initial())
	for i, e := range src.Events() {
		tr.Append(&event.Event{Time: e.Time, Site: e.Site, Host: e.Host, Desc: e.Desc, Rule: e.Rule})
		if (i+1)%chunk == 0 {
			m.Advance(tr)
			if h, ok := m.Horizon(); compact && ok {
				tr.CompactBefore(h, 0)
			}
		}
	}
	return tr
}

// TestMonitorMatchesBatch incremental verdicts over a compacted trace
// must be byte-identical to the batch checker over the full history,
// for holding and violated executions alike.
func TestMonitorMatchesBatch(t *testing.T) {
	cases := map[string]func() *trace.Trace{
		"holds": func() *trace.Trace { return propagated([]int64{1, 2, 3, 4, 5, 6}, 3) },
		"late-propagation": func() *trace.Trace {
			tr := propagated([]int64{1, 2, 3}, 3)
			write(tr, 400, itemX, data.NewInt(9))
			write(tr, 409, itemY, data.NewInt(9)) // misses both κ=5s windows
			write(tr, 500, data.Item("Z"), data.NewInt(0))
			return tr
		},
		"invented-value": func() *trace.Trace {
			tr := propagated([]int64{1, 2}, 3)
			write(tr, 300, itemY, data.NewInt(77)) // X never held 77
			write(tr, 400, data.Item("Z"), data.NewInt(0))
			return tr
		},
	}
	for name, mk := range cases {
		for _, compact := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/compact=%v", name, compact), func(t *testing.T) {
				src := mk()
				want := CheckAll(src, monitoredSet()...)
				m, err := NewMonitor(monitoredSet()...)
				if err != nil {
					t.Fatal(err)
				}
				tr := replayMonitored(t, src, m, 4, compact)
				got := m.Reports(tr)
				if !EqualVerdicts(want, got) {
					t.Fatalf("verdicts diverged:\nbatch: %+v\nmonitor: %+v", want, got)
				}
				if compact {
					if pe, _ := tr.Pruned(); pe == 0 {
						t.Fatal("compaction pruned nothing; test exercised nothing")
					}
				}
				// Reports must be repeatable (non-destructive).
				if again := m.Reports(tr); !EqualVerdicts(got, again) {
					t.Fatal("second Reports call diverged")
				}
			})
		}
	}
}

// TestMonitorRejectsUnbounded the unbounded forms cannot be monitored
// incrementally and must be rejected at registration.
func TestMonitorRejectsUnbounded(t *testing.T) {
	for _, g := range []Guarantee{
		Follows{X: "X", Y: "Y"},
		Leads{X: "X", Y: "Y"},
		StrictlyFollows{X: "X", Y: "Y"},
		MonitorFlag{X: itemX, Y: itemY, Flag: data.Item("F"), Tb: data.Item("Tb"), Kappa: time.Second},
	} {
		if _, err := NewMonitor(g); err == nil {
			t.Errorf("%s: registration succeeded, want rejection", g.Name())
		}
	}
}

// TestMonitorHorizonAdvances the horizon must trail the trace end by at
// most the widest retention lookback and move forward monotonically.
func TestMonitorHorizonAdvances(t *testing.T) {
	m, err := NewMonitor(monitoredSet()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Horizon(); ok {
		t.Fatal("horizon valid before any Advance")
	}
	tr := trace.New(nil)
	var prev time.Time
	for i := 0; i < 30; i++ {
		write(tr, i*10, itemX, data.NewInt(int64(i)))
		write(tr, i*10+3, itemY, data.NewInt(int64(i)))
		m.Advance(tr)
		h, ok := m.Horizon()
		if !ok {
			t.Fatal("no horizon after Advance")
		}
		if h.Before(prev) {
			t.Fatalf("horizon moved backwards: %v -> %v", prev, h)
		}
		// Widest lookback here is metric-leads' 2κ = 10s.
		if lag := tr.End().Sub(h); lag > 10*time.Second {
			t.Fatalf("horizon lags end by %v", lag)
		}
		prev = h
	}
	if m.Widest() != 8*time.Second {
		t.Fatalf("Widest = %v", m.Widest())
	}
}

// TestMonitorHandoffResume pending obligations survive the
// export/import path a rebalance uses: verdicts after a mid-run handoff
// equal the batch verdicts, and re-registered windows do not re-open
// discharged obligations (Checked counts stay exact).
func TestMonitorHandoffResume(t *testing.T) {
	src := propagated([]int64{1, 2, 3, 4, 5, 6, 7, 8}, 3)
	want := CheckAll(src, monitoredSet()...)

	m1, err := NewMonitor(monitoredSet()...)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(src.Initial())
	events := src.Events()
	half := len(events) / 2
	for _, e := range events[:half] {
		tr.Append(&event.Event{Time: e.Time, Site: e.Site, Desc: e.Desc})
	}
	m1.Advance(tr)
	blob, err := m1.Handoff()
	if err != nil {
		t.Fatal(err)
	}

	m2, err := NewMonitor(monitoredSet()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Resume(blob); err != nil {
		t.Fatal(err)
	}
	if h1, ok1 := m1.Horizon(); ok1 {
		if h2, ok2 := m2.Horizon(); !ok2 || !h1.Equal(h2) {
			t.Fatalf("horizon not carried: %v vs %v", h1, h2)
		}
	}
	for _, e := range events[half:] {
		tr.Append(&event.Event{Time: e.Time, Site: e.Site, Desc: e.Desc})
		m2.Advance(tr)
	}
	got := m2.Reports(tr)
	if !EqualVerdicts(want, got) {
		t.Fatalf("verdicts diverged after handoff:\nbatch: %+v\nresumed: %+v", want, got)
	}

	// Resume of an unknown guarantee must fail loudly.
	m3, _ := NewMonitor(monitoredSet()[:1]...)
	if err := m3.Resume(blob); err == nil {
		t.Fatal("Resume with missing registrations succeeded")
	}
}
