// Package guarantee implements the paper's guarantee language (Section
// 3.3) as checkable predicates over recorded executions.  Where the paper
// proves guarantees from interface and strategy specifications using proof
// rules [CGMW94], this package decides — for a concrete recorded trace —
// whether each guarantee held, turning every test and benchmark run into a
// machine-checked instance of the paper's claims.
//
// The guarantee forms implemented here are exactly those the paper
// discusses:
//
//	Follows          (1)  (Y=y)@t1 ⇒ (X=y)@t2 ∧ t2 < t1
//	Leads            (2)  (X=x)@t1 ⇒ (Y=x)@t2 ∧ t2 > t1
//	StrictlyFollows  (3)  order-preserving propagation
//	MetricFollows    (4)  (Y=y)@t1 ⇒ (X=y)@t2 ∧ t1−κ < t2 < t1
//	MetricLeads           (X=x)@t1 ⇒ (Y=x)@t2 ∧ t1 < t2 ≤ t1+κ
//	Invariant             pred@t for all t            (Demarcation, §6.1)
//	ExistsWithin          E(P(i))@t ⇒ E(S(i))@[t, t+κ]   (referential, §6.2)
//	MonitorFlag           (Flag ∧ Tb=s)@t ⇒ (X=Y)@@[s, t−κ]  (§6.3)
//	Periodic              pred holds daily in a wall-clock window (§6.4)
//
// Guarantees over parameterized families (salary1(n) = salary2(n) for all
// n) are checked per observed key.
package guarantee

import (
	"fmt"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
	"cmtk/internal/rule"
	"cmtk/internal/trace"
	"cmtk/internal/vclock"
)

// Guarantee is a checkable consistency statement.
type Guarantee interface {
	// Name returns a short identifier, e.g. "follows(X,Y)".
	Name() string
	// Formula renders the guarantee in the paper's logical notation.
	Formula() string
	// Check decides whether the guarantee held over the trace.
	Check(tr *trace.Trace) Report
}

// Report is the outcome of checking one guarantee against one trace.
type Report struct {
	Guarantee  string
	Formula    string
	Holds      bool
	Checked    int      // obligations examined
	Violations []string // human-readable descriptions, capped
}

const maxViolations = 16

// Violate records a violation (capped) and marks the report failed.
// Custom guarantee implementations outside this package use it too.
func (r *Report) Violate(format string, args ...any) {
	r.Holds = false
	if len(r.Violations) < maxViolations {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

func (r *Report) violate(format string, args ...any) { r.Violate(format, args...) }

func (r Report) String() string {
	status := "HOLDS"
	if !r.Holds {
		status = fmt.Sprintf("VIOLATED (%d shown)", len(r.Violations))
	}
	return fmt.Sprintf("%s: %s over %d obligations", r.Guarantee, status, r.Checked)
}

// TimeValue encodes an instant as a data.Value (integer seconds since the
// simulation epoch) so CM-private items such as Tb can store times.
func TimeValue(t time.Time) data.Value { return vclock.TimeValue(t) }

// ValueTime decodes a TimeValue.
func ValueTime(v data.Value) (time.Time, bool) { return vclock.ValueTime(v) }

// sampleKey orders timeline samples by (time, seq).
func sampleBefore(a, b trace.Sample) bool {
	if !a.At.Equal(b.At) {
		return a.At.Before(b.At)
	}
	return a.Seq < b.Seq
}

// families collects, for a base name, the set of argument keys observed in
// the trace (from any event on an item with that base), together with the
// concrete item names.
func families(tr *trace.Trace, base string) []data.ItemName {
	seen := map[string]data.ItemName{}
	for _, e := range tr.Events() {
		if e.Desc.Op.HasItem() && e.Desc.Item.Base == base {
			seen[e.Desc.Item.Key()] = e.Desc.Item
		}
	}
	for k := range tr.Initial() {
		n, err := data.ParseItemName(k)
		if err == nil && n.Base == base {
			seen[k] = n
		}
	}
	out := make([]data.ItemName, 0, len(seen))
	for _, n := range seen {
		out = append(out, n)
	}
	// Deterministic order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Key() < out[j-1].Key(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// pairKeys produces the (x,y) item pairs to check for a copy guarantee
// between two families: for parameterized bases the keys observed on
// either side are united (a key seen only on Y still obligates Y-follows-X
// for that key).
func pairKeys(tr *trace.Trace, xBase, yBase string) [][2]data.ItemName {
	xs := families(tr, xBase)
	ys := families(tr, yBase)
	keyArgs := map[string][]data.Value{}
	for _, n := range xs {
		keyArgs[argsKey(n.Args)] = n.Args
	}
	for _, n := range ys {
		keyArgs[argsKey(n.Args)] = n.Args
	}
	var out [][2]data.ItemName
	for _, args := range keyArgs {
		out = append(out, [2]data.ItemName{
			{Base: xBase, Args: args},
			{Base: yBase, Args: args},
		})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j][0].Key() < out[j-1][0].Key(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func argsKey(args []data.Value) string {
	return data.ItemName{Base: "", Args: args}.String()
}

// Follows is guarantee (1) of Section 3.3.1: at no time does Y hold a value
// not previously (or initially) taken by X.  X and Y are item base names;
// parameterized families are checked per key.
type Follows struct {
	X, Y string
}

// Name implements Guarantee.
func (g Follows) Name() string { return fmt.Sprintf("follows(%s,%s)", g.X, g.Y) }

// Formula implements Guarantee.
func (g Follows) Formula() string {
	return fmt.Sprintf("(%s = y)@t1 => (%s = y)@t2 and t2 < t1", g.Y, g.X)
}

// Check implements Guarantee.
func (g Follows) Check(tr *trace.Trace) Report {
	rep := Report{Guarantee: g.Name(), Formula: g.Formula(), Holds: true}
	for _, pair := range pairKeys(tr, g.X, g.Y) {
		x, y := pair[0], pair[1]
		xtl := tr.Timeline(x)
		for _, ys := range tr.Timeline(y) {
			if ys.V.IsNull() {
				continue // Y not yet set
			}
			rep.Checked++
			ok := false
			for _, xs := range xtl {
				if sampleBefore(ys, xs) {
					break
				}
				if xs.V.Equal(ys.V) {
					ok = true
					break
				}
			}
			if !ok {
				rep.violate("%s held %s at %s which %s never held before",
					y, ys.V, ys.At.Format(time.TimeOnly), x)
			}
		}
	}
	return rep
}

// Leads is guarantee (2): every value taken by X is eventually reflected
// in Y — no lost values.  Settle excuses X-values taken within Settle of
// the end of the trace, whose propagation window is still open.
type Leads struct {
	X, Y   string
	Settle time.Duration
}

// Name implements Guarantee.
func (g Leads) Name() string { return fmt.Sprintf("leads(%s,%s)", g.X, g.Y) }

// Formula implements Guarantee.
func (g Leads) Formula() string {
	return fmt.Sprintf("(%s = x)@t1 => (%s = x)@t2 and t2 > t1", g.X, g.Y)
}

// Check implements Guarantee.
func (g Leads) Check(tr *trace.Trace) Report {
	rep := Report{Guarantee: g.Name(), Formula: g.Formula(), Holds: true}
	horizon := tr.End().Add(-g.Settle)
	for _, pair := range pairKeys(tr, g.X, g.Y) {
		x, y := pair[0], pair[1]
		ytl := tr.Timeline(y)
		for _, xs := range tr.Timeline(x) {
			if xs.V.IsNull() {
				continue
			}
			if xs.At.After(horizon) {
				continue // propagation window still open
			}
			rep.Checked++
			ok := false
			for _, ys := range ytl {
				if sampleBefore(xs, ys) && ys.V.Equal(xs.V) {
					ok = true
					break
				}
			}
			if !ok {
				rep.violate("%s took %s at %s but %s never reflected it",
					x, xs.V, xs.At.Format(time.TimeOnly), y)
			}
		}
	}
	return rep
}

// StrictlyFollows is guarantee (3): Y receives X's values in the order X
// took them.  We check the strongest natural reading: the sequence of
// distinct values Y takes is a subsequence of the sequence of distinct
// values X takes.
type StrictlyFollows struct {
	X, Y string
}

// Name implements Guarantee.
func (g StrictlyFollows) Name() string { return fmt.Sprintf("strictly-follows(%s,%s)", g.X, g.Y) }

// Formula implements Guarantee.
func (g StrictlyFollows) Formula() string {
	return fmt.Sprintf("(%s=y1)@t1 and (%s=y2)@t2 and t1<t2 => (%s=y1)@t3 and (%s=y2)@t4 and t3<t4",
		g.Y, g.Y, g.X, g.X)
}

// Check implements Guarantee.
func (g StrictlyFollows) Check(tr *trace.Trace) Report {
	rep := Report{Guarantee: g.Name(), Formula: g.Formula(), Holds: true}
	for _, pair := range pairKeys(tr, g.X, g.Y) {
		x, y := pair[0], pair[1]
		xtl := tr.Timeline(x)
		i := 0
		for _, ys := range tr.Timeline(y) {
			if ys.V.IsNull() {
				continue
			}
			rep.Checked++
			found := false
			for i < len(xtl) {
				if xtl[i].V.Equal(ys.V) {
					found = true
					i++
					break
				}
				i++
			}
			if !found {
				rep.violate("%s value %s at %s breaks order against %s",
					y, ys.V, ys.At.Format(time.TimeOnly), x)
				break
			}
		}
	}
	return rep
}

// MetricFollows is guarantee (4): Y only takes values X held no more than
// Kappa ago.
type MetricFollows struct {
	X, Y  string
	Kappa time.Duration
}

// Name implements Guarantee.
func (g MetricFollows) Name() string {
	return fmt.Sprintf("metric-follows(%s,%s,%s)", g.X, g.Y, g.Kappa)
}

// Formula implements Guarantee.
func (g MetricFollows) Formula() string {
	return fmt.Sprintf("(%s = y)@t1 => (%s = y)@t2 and t1-%s < t2 <= t1", g.Y, g.X, g.Kappa)
}

// Check implements Guarantee.  X "had value v within the window" when some
// maximal constant interval of X's timeline with value v intersects
// [t1−κ, t1].
func (g MetricFollows) Check(tr *trace.Trace) Report {
	rep := Report{Guarantee: g.Name(), Formula: g.Formula(), Holds: true}
	end := tr.End()
	for _, pair := range pairKeys(tr, g.X, g.Y) {
		x, y := pair[0], pair[1]
		xtl := tr.Timeline(x)
		for _, ys := range tr.Timeline(y) {
			if ys.V.IsNull() {
				continue
			}
			rep.Checked++
			from := ys.At.Add(-g.Kappa)
			ok := false
			for i, xs := range xtl {
				// Interval during which X held xs.V: [xs.At, next.At), or
				// to end of trace for the last sample.
				intEnd := end
				if i+1 < len(xtl) {
					intEnd = xtl[i+1].At
				}
				if !xs.V.Equal(ys.V) {
					continue
				}
				// Overlap with (from, ys.At]?
				if xs.At.After(ys.At) {
					break
				}
				if intEnd.After(from) {
					ok = true
					break
				}
			}
			if !ok {
				rep.violate("%s held %s at %s but %s did not hold it within %s before",
					y, ys.V, ys.At.Format(time.TimeOnly), x, g.Kappa)
			}
		}
	}
	return rep
}

// MetricLeads bounds propagation delay: every value X takes appears in Y
// within Kappa.
type MetricLeads struct {
	X, Y  string
	Kappa time.Duration
}

// Name implements Guarantee.
func (g MetricLeads) Name() string {
	return fmt.Sprintf("metric-leads(%s,%s,%s)", g.X, g.Y, g.Kappa)
}

// Formula implements Guarantee.
func (g MetricLeads) Formula() string {
	return fmt.Sprintf("(%s = x)@t1 => (%s = x)@t2 and t1 < t2 <= t1+%s", g.X, g.Y, g.Kappa)
}

// Check implements Guarantee.
func (g MetricLeads) Check(tr *trace.Trace) Report {
	rep := Report{Guarantee: g.Name(), Formula: g.Formula(), Holds: true}
	horizon := tr.End().Add(-g.Kappa)
	for _, pair := range pairKeys(tr, g.X, g.Y) {
		x, y := pair[0], pair[1]
		ytl := tr.Timeline(y)
		for _, xs := range tr.Timeline(x) {
			if xs.V.IsNull() || xs.At.After(horizon) {
				continue
			}
			rep.Checked++
			deadline := xs.At.Add(g.Kappa)
			ok := false
			for _, ys := range ytl {
				if sampleBefore(xs, ys) && !ys.At.After(deadline) && ys.V.Equal(xs.V) {
					ok = true
					break
				}
			}
			if !ok {
				rep.violate("%s took %s at %s; %s did not reflect it within %s",
					x, xs.V, xs.At.Format(time.TimeOnly), y, g.Kappa)
			}
		}
	}
	return rep
}

// Invariant asserts a condition over data items holds in every state of
// the execution, e.g. the Demarcation Protocol's X <= Y.  The expression
// may not reference rule parameters.
type Invariant struct {
	Label string
	Pred  rule.Expr
}

// Name implements Guarantee.
func (g Invariant) Name() string { return fmt.Sprintf("invariant(%s)", g.Label) }

// Formula implements Guarantee.
func (g Invariant) Formula() string { return fmt.Sprintf("(%s)@t for all t", g.Pred) }

// Check implements Guarantee.
func (g Invariant) Check(tr *trace.Trace) Report {
	rep := Report{Guarantee: g.Name(), Formula: g.Formula(), Holds: true}
	evalAt := func(at time.Time, in data.Interpretation) {
		rep.Checked++
		ok, err := rule.EvalBool(g.Pred, envOf(in))
		if err != nil {
			rep.violate("evaluation error at %s: %v", at.Format(time.TimeOnly), err)
			return
		}
		if !ok {
			rep.violate("invariant false at %s in state %s", at.Format(time.TimeOnly), in)
		}
	}
	evalAt(time.Time{}, tr.Initial())
	tr.WalkNewStates(func(e *event.Event, in data.Interpretation) bool {
		evalAt(e.Time, in)
		return true
	})
	return rep
}

type itemEnv struct{ in data.Interpretation }

func envOf(in data.Interpretation) rule.Env { return itemEnv{in} }

func (e itemEnv) Param(string) (data.Value, bool) { return data.NullValue, false }
func (e itemEnv) Item(n data.ItemName) (data.Value, bool, error) {
	v, ok := e.in[n.Key()]
	return v, ok && !v.IsNull(), nil
}

// ExistsWithin is the weakened referential-integrity guarantee of Section
// 6.2: whenever an item of family Ref exists, the matching item of family
// Target exists within Kappa — equivalently, no contiguous violation
// window for one key exceeds Kappa.
type ExistsWithin struct {
	Ref, Target string
	Kappa       time.Duration
}

// Name implements Guarantee.
func (g ExistsWithin) Name() string {
	return fmt.Sprintf("exists-within(%s,%s,%s)", g.Ref, g.Target, g.Kappa)
}

// Formula implements Guarantee.
func (g ExistsWithin) Formula() string {
	return fmt.Sprintf("E(%s(i))@t => E(%s(i))@[t, t+%s]", g.Ref, g.Target, g.Kappa)
}

// Check implements Guarantee.
func (g ExistsWithin) Check(tr *trace.Trace) Report {
	rep := Report{Guarantee: g.Name(), Formula: g.Formula(), Holds: true}
	end := tr.End()
	for _, pair := range pairKeys(tr, g.Ref, g.Target) {
		ref, tgt := pair[0], pair[1]
		rep.Checked++
		// Walk the event sequence tracking the violation condition
		// E(ref) && !E(tgt).
		violStart := time.Time{}
		inViol := false
		consider := func(at time.Time, in data.Interpretation) {
			bad := in.Has(ref) && !in.Has(tgt)
			switch {
			case bad && !inViol:
				inViol = true
				violStart = at
			case !bad && inViol:
				inViol = false
				if at.Sub(violStart) > g.Kappa {
					rep.violate("%s existed without %s for %s starting %s",
						ref, tgt, at.Sub(violStart), violStart.Format(time.TimeOnly))
				}
			}
		}
		consider(time.Time{}, tr.Initial())
		tr.WalkNewStates(func(e *event.Event, in data.Interpretation) bool {
			consider(e.Time, in)
			return true
		})
		if inViol && end.Sub(violStart) > g.Kappa {
			rep.violate("%s existed without %s for %s starting %s (unresolved at end of trace)",
				ref, tgt, end.Sub(violStart), violStart.Format(time.TimeOnly))
		}
	}
	return rep
}

// MonitorFlag is the monitoring guarantee of Section 6.3:
//
//	((Flag = true) ∧ (Tb = s))@t ⇒ (X = Y)@@[s, t−κ]
//
// whenever the auxiliary Flag is set, the copy constraint held throughout
// the interval from the recorded base time Tb to κ before now.
type MonitorFlag struct {
	Flag, Tb data.ItemName
	X, Y     data.ItemName
	Kappa    time.Duration
}

// Name implements Guarantee.
func (g MonitorFlag) Name() string {
	return fmt.Sprintf("monitor(%s,%s)", g.X, g.Y)
}

// Formula implements Guarantee.
func (g MonitorFlag) Formula() string {
	return fmt.Sprintf("((%s = true) and (%s = s))@t => (%s = %s)@@[s, t-%s]",
		g.Flag, g.Tb, g.X, g.Y, g.Kappa)
}

// Check implements Guarantee.  The left-hand side is evaluated at every
// state of the execution.
func (g MonitorFlag) Check(tr *trace.Trace) Report {
	rep := Report{Guarantee: g.Name(), Formula: g.Formula(), Holds: true}
	// equalAt reports whether X=Y held at all states in [from, to].
	equalAt := func(from, to time.Time) bool {
		if to.Before(from) {
			return true // empty interval
		}
		st := tr.StateAt(from)
		if !st.Get(g.X).Equal(st.Get(g.Y)) {
			return false
		}
		equal := true
		tr.WalkNewStates(func(e *event.Event, in data.Interpretation) bool {
			if e.Time.After(to) {
				return false
			}
			if !e.Time.Before(from) && !in.Get(g.X).Equal(in.Get(g.Y)) {
				equal = false
				return false
			}
			return true
		})
		return equal
	}
	tr.WalkNewStates(func(e *event.Event, in data.Interpretation) bool {
		if !in.Get(g.Flag).Truthy() {
			return true
		}
		s, ok := ValueTime(in.Get(g.Tb))
		if !ok {
			rep.violate("Flag set at %s but %s holds no time", e.Time.Format(time.TimeOnly), g.Tb)
			return true
		}
		rep.Checked++
		if !equalAt(s, e.Time.Add(-g.Kappa)) {
			rep.violate("Flag set at %s but %s != %s within [%s, t-%s]",
				e.Time.Format(time.TimeOnly), g.X, g.Y, s.Format(time.TimeOnly), g.Kappa)
		}
		return true
	})
	return rep
}

// Periodic is the banking guarantee of Section 6.4: the predicate holds
// every day between From and To (offsets from midnight; To may be on the
// following day, e.g. 17:15 to 08:00).
type Periodic struct {
	Label    string
	Pred     rule.Expr
	From, To time.Duration // offsets from midnight, local to the trace's clock
}

// Name implements Guarantee.
func (g Periodic) Name() string { return fmt.Sprintf("periodic(%s)", g.Label) }

// Formula implements Guarantee.
func (g Periodic) Formula() string {
	return fmt.Sprintf("(%s)@t for all t with tod(t) in [%s, %s)", g.Pred, g.From, g.To)
}

// inWindow reports whether the instant falls inside the daily window.
func (g Periodic) inWindow(t time.Time) bool {
	midnight := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, t.Location())
	off := t.Sub(midnight)
	if g.From <= g.To {
		return off >= g.From && off < g.To
	}
	return off >= g.From || off < g.To // wraps past midnight
}

// Check implements Guarantee.  The state is piecewise constant, so it
// suffices to evaluate at each event inside the window and at each window
// opening instant.
func (g Periodic) Check(tr *trace.Trace) Report {
	rep := Report{Guarantee: g.Name(), Formula: g.Formula(), Holds: true}
	evalAt := func(at time.Time, in data.Interpretation) {
		rep.Checked++
		ok, err := rule.EvalBool(g.Pred, envOf(in))
		if err != nil {
			rep.violate("evaluation error at %s: %v", at.Format(time.DateTime), err)
			return
		}
		if !ok {
			rep.violate("predicate false at %s", at.Format(time.DateTime))
		}
	}
	events := tr.Events()
	if len(events) == 0 {
		return rep
	}
	tr.WalkNewStates(func(e *event.Event, in data.Interpretation) bool {
		if g.inWindow(e.Time) {
			evalAt(e.Time, in)
		}
		return true
	})
	// Window openings: for each day spanned by the trace, if the opening
	// instant lies within the trace, evaluate the state then.
	start, end := events[0].Time, events[len(events)-1].Time
	for day := time.Date(start.Year(), start.Month(), start.Day(), 0, 0, 0, 0, start.Location()); !day.After(end); day = day.Add(24 * time.Hour) {
		open := day.Add(g.From)
		if open.After(start) && open.Before(end) {
			evalAt(open, tr.StateAt(open))
		}
	}
	return rep
}

// CheckAll evaluates a set of guarantees against a trace.
func CheckAll(tr *trace.Trace, gs ...Guarantee) []Report {
	out := make([]Report, len(gs))
	for i, g := range gs {
		out[i] = g.Check(tr)
	}
	return out
}

// AllHold reports whether every report holds.
func AllHold(reports []Report) bool {
	for _, r := range reports {
		if !r.Holds {
			return false
		}
	}
	return true
}
