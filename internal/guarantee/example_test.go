package guarantee_test

import (
	"fmt"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
	"cmtk/internal/guarantee"
	"cmtk/internal/trace"
	"cmtk/internal/vclock"
)

// ExampleParse checks a declared guarantee against a recorded execution
// in which the replica missed one value — guarantee (1) holds but
// guarantee (2) does not, the Section 4.2.3 polling outcome.
func ExampleParse() {
	tr := trace.New(nil)
	at := func(sec int, item string, v int64) {
		tr.Append(&event.Event{
			Time: vclock.Epoch.Add(time.Duration(sec) * time.Second),
			Site: "s",
			Desc: event.W(data.Item(item), data.NewInt(v)),
		})
	}
	at(0, "X", 1)
	at(5, "Y", 1)
	at(10, "X", 2) // lost: never reaches Y
	at(11, "X", 3)
	at(15, "Y", 3)
	at(500, "Z", 0) // horizon

	follows, _ := guarantee.Parse("follows(X, Y)")
	leads, _ := guarantee.Parse("leads(X, Y, 60s)")
	fmt.Println(follows.Check(tr))
	fmt.Println(leads.Check(tr))
	// Output:
	// follows(X,Y): HOLDS over 2 obligations
	// leads(X,Y): VIOLATED (1 shown) over 3 obligations
}
