package guarantee

import (
	"fmt"
	"strings"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/rule"
)

// Parse reads a guarantee declaration in concrete syntax, so deployments
// can state the consistency they expect in configuration files the same
// way they state interfaces and strategies:
//
//	follows(salary1, salary2)
//	leads(salary1, salary2, 30s)
//	strictly-follows(salary1, salary2)
//	metric-follows(salary1, salary2, 15s)
//	metric-leads(salary1, salary2, 15s)
//	invariant(X <= Y)
//	exists-within(project, salary, 24h)
//	periodic(B1 = B2, 17h15m, 8h)
//	monitor(Flag, Tb, X, Y, 10s)
//
// Durations use Go syntax (15s, 24h, 17h15m).
func Parse(src string) (Guarantee, error) {
	src = strings.TrimSpace(src)
	open := strings.IndexByte(src, '(')
	if open < 0 || !strings.HasSuffix(src, ")") {
		return nil, fmt.Errorf("guarantee: want form name(args), got %q", src)
	}
	name := strings.TrimSpace(src[:open])
	argSrc := src[open+1 : len(src)-1]
	args := splitTop(argSrc)
	for i := range args {
		args[i] = strings.TrimSpace(args[i])
	}
	ident := func(i int) (string, error) {
		if i >= len(args) || args[i] == "" {
			return "", fmt.Errorf("guarantee: %s wants an item name as argument %d", name, i+1)
		}
		return args[i], nil
	}
	dur := func(i int) (time.Duration, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("guarantee: %s wants a duration as argument %d", name, i+1)
		}
		d, err := time.ParseDuration(args[i])
		if err != nil {
			return 0, fmt.Errorf("guarantee: %s: %w", name, err)
		}
		return d, nil
	}
	argc := func(want int) error {
		if len(args) != want {
			return fmt.Errorf("guarantee: %s wants %d arguments, got %d", name, want, len(args))
		}
		return nil
	}
	switch name {
	case "follows":
		if err := argc(2); err != nil {
			return nil, err
		}
		x, err := ident(0)
		if err != nil {
			return nil, err
		}
		y, err := ident(1)
		if err != nil {
			return nil, err
		}
		return Follows{X: x, Y: y}, nil
	case "leads":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("guarantee: leads wants 2 or 3 arguments, got %d", len(args))
		}
		x, err := ident(0)
		if err != nil {
			return nil, err
		}
		y, err := ident(1)
		if err != nil {
			return nil, err
		}
		g := Leads{X: x, Y: y}
		if len(args) == 3 {
			if g.Settle, err = dur(2); err != nil {
				return nil, err
			}
		}
		return g, nil
	case "strictly-follows":
		if err := argc(2); err != nil {
			return nil, err
		}
		x, err := ident(0)
		if err != nil {
			return nil, err
		}
		y, err := ident(1)
		if err != nil {
			return nil, err
		}
		return StrictlyFollows{X: x, Y: y}, nil
	case "metric-follows", "metric-leads":
		if err := argc(3); err != nil {
			return nil, err
		}
		x, err := ident(0)
		if err != nil {
			return nil, err
		}
		y, err := ident(1)
		if err != nil {
			return nil, err
		}
		k, err := dur(2)
		if err != nil {
			return nil, err
		}
		if name == "metric-follows" {
			return MetricFollows{X: x, Y: y, Kappa: k}, nil
		}
		return MetricLeads{X: x, Y: y, Kappa: k}, nil
	case "invariant":
		if err := argc(1); err != nil {
			return nil, err
		}
		pred, err := rule.ParseExpr(args[0])
		if err != nil {
			return nil, err
		}
		return Invariant{Label: args[0], Pred: pred}, nil
	case "exists-within":
		if err := argc(3); err != nil {
			return nil, err
		}
		ref, err := ident(0)
		if err != nil {
			return nil, err
		}
		tgt, err := ident(1)
		if err != nil {
			return nil, err
		}
		k, err := dur(2)
		if err != nil {
			return nil, err
		}
		return ExistsWithin{Ref: ref, Target: tgt, Kappa: k}, nil
	case "periodic":
		if err := argc(3); err != nil {
			return nil, err
		}
		pred, err := rule.ParseExpr(args[0])
		if err != nil {
			return nil, err
		}
		from, err := dur(1)
		if err != nil {
			return nil, err
		}
		to, err := dur(2)
		if err != nil {
			return nil, err
		}
		return Periodic{Label: args[0], Pred: pred, From: from, To: to}, nil
	case "monitor":
		if err := argc(5); err != nil {
			return nil, err
		}
		names := make([]data.ItemName, 4)
		for i := 0; i < 4; i++ {
			s, err := ident(i)
			if err != nil {
				return nil, err
			}
			n, err := data.ParseItemName(s)
			if err != nil {
				return nil, err
			}
			names[i] = n
		}
		k, err := dur(4)
		if err != nil {
			return nil, err
		}
		return MonitorFlag{Flag: names[0], Tb: names[1], X: names[2], Y: names[3], Kappa: k}, nil
	default:
		return nil, fmt.Errorf("guarantee: unknown form %q", name)
	}
}

// splitTop splits on commas outside parentheses and quotes.
func splitTop(s string) []string {
	var parts []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}
