// Payroll: the full Section 4.2 scenario over real TCP.
//
// A company stores personnel data in a San Francisco branch database (A)
// and at the New York headquarters (B).  Both are autonomous relational
// servers speaking SQL over the wire; the toolkit maintains
// salary1(n) = salary2(n) without modifying either database.
//
// Part 1 uses A's notify interface (a database trigger declared by the
// CM-Translator) with the update-propagation strategy: guarantees
// (1)–(4) all hold.
//
// Part 2 replays the paper's twist: the administrator at A withdraws the
// notify interface, leaving only read.  The toolkit falls back to the
// polling strategy; guarantee (2) is no longer claimed — and the run
// demonstrates why, by squeezing two updates into one polling interval.
//
// Run with:
//
//	go run ./examples/payroll
package main

import (
	"fmt"
	"log"
	"time"

	"cmtk/internal/core"
	"cmtk/internal/data"
	"cmtk/internal/guarantee"
	"cmtk/internal/rid"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/ris/server"
	"cmtk/internal/strategy"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

const ridANotify = `
kind relstore
site A
addr %s
item salary1
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary
interface Ws(salary1(n), b) ->2s N(salary1(n), b)
`

const ridAReadOnly = `
kind relstore
site A
addr %s
item salary1
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
interface RR(salary1(n)) && salary1(n) = b ->1s R(salary1(n), b)
`

const ridB = `
kind relstore
site B
addr %s
item salary2
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  write  UPDATE employees SET salary = $b WHERE empid = $n
  insert INSERT INTO employees (empid, salary) VALUES ($n, $b)
  delete DELETE FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
interface WR(salary2(n), b) ->3s W(salary2(n), b)
`

func main() {
	// The two autonomous database servers, reachable only over TCP.
	dbA := relstore.New("sf-branch")
	mustExec(dbA, "CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")
	srvA, err := server.ServeRel("127.0.0.1:0", dbA)
	check(err)
	defer srvA.Close()

	dbB := relstore.New("ny-hq")
	mustExec(dbB, "CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")
	srvB, err := server.ServeRel("127.0.0.1:0", dbB)
	check(err)
	defer srvB.Close()

	fmt.Printf("branch database at %s, HQ database at %s\n\n", srvA.Addr(), srvB.Addr())

	// ---- Part 1: notify interface, update propagation ----
	fmt.Println("== part 1: notify interface at A ==")
	cfgA, err := rid.ParseString(fmt.Sprintf(ridANotify, srvA.Addr()))
	check(err)
	cfgB, err := rid.ParseString(fmt.Sprintf(ridB, srvB.Addr()))
	check(err)

	tk := core.New(core.Config{Clock: vclock.Real{}, Network: transport.NewTCPNetwork()})
	check(tk.AddSite(core.Site{RID: cfgA}))
	check(tk.AddSite(core.Site{RID: cfgB}))
	check(tk.AddCopy(core.CopyConstraint{X: "salary1", Y: "salary2", Arity: 1, Strategy: "notify"}))
	check(tk.Deploy())
	check(tk.Start())

	mustExec(dbA, "INSERT INTO employees VALUES ('e7', 100)")
	mustExec(dbA, "UPDATE employees SET salary = 120 WHERE empid = 'e7'")
	waitFor(dbB, "e7", 120)
	fmt.Println("update propagated: HQ sees e7 salary = 120")
	for _, rep := range tk.CheckGuarantees() {
		fmt.Printf("  %s\n", rep)
	}
	tk.Stop()

	// ---- Part 2: the administrator withdraws notify; polling remains ----
	fmt.Println("\n== part 2: interface change at A — read-only, polling strategy ==")
	cfgA2, err := rid.ParseString(fmt.Sprintf(ridAReadOnly, srvA.Addr()))
	check(err)
	cfgB2, err := rid.ParseString(fmt.Sprintf(ridB, srvB.Addr()))
	check(err)
	tk2 := core.New(core.Config{Clock: vclock.Real{}, Network: transport.NewTCPNetwork()})
	check(tk2.AddSite(core.Site{RID: cfgA2}))
	check(tk2.AddSite(core.Site{RID: cfgB2}))
	check(tk2.AddCopy(core.CopyConstraint{
		X: "salary1", Y: "salary2", Arity: 1, Strategy: "poll",
		Options: strategy.Options{
			PollPeriod: 300 * time.Millisecond,
			PollKeys:   []data.Value{data.NewString("e7")},
		},
	}))
	check(tk2.Deploy())
	check(tk2.Start())
	defer tk2.Stop()

	// Two updates inside one polling interval: the middle value is lost.
	appWrite(tk2, dbA, "e7", 120, 130)
	appWrite(tk2, dbA, "e7", 130, 140)
	waitFor(dbB, "e7", 140)
	time.Sleep(2 * time.Second) // several more polling rounds pass
	fmt.Println("after two rapid updates, HQ sees only the final value 140")

	follows := guarantee.Follows{X: "salary1", Y: "salary2"}.Check(tk2.Trace())
	leads := guarantee.Leads{X: "salary1", Y: "salary2", Settle: time.Second}.Check(tk2.Trace())
	fmt.Printf("  %s\n", follows)
	fmt.Printf("  %s   <- the paper's point: polling loses guarantee (2)\n", leads)
}

// appWrite performs an application write at A and records the spontaneous
// event (the CM cannot observe it through a read-only interface).
func appWrite(tk *core.Toolkit, db *relstore.DB, key string, old, val int64) {
	mustExec(db, fmt.Sprintf("UPDATE employees SET salary = %d WHERE empid = '%s'", val, key))
	check(tk.RecordSpontaneous("A", data.Item("salary1", data.NewString(key)),
		data.NewInt(old), data.NewInt(val)))
}

func waitFor(db *relstore.DB, key string, want int64) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		res, err := db.Exec(fmt.Sprintf("SELECT salary FROM employees WHERE empid = '%s'", key))
		check(err)
		if len(res.Rows) == 1 && res.Rows[0][0].Equal(data.NewInt(want)) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatalf("value %d never reached the replica", want)
}

func mustExec(db *relstore.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatal(err)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
