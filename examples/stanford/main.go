// Stanford: the Section 4.3 scenario — constraints spanning four
// heterogeneous information systems without modifying any of them:
//
//   - "lookup":  the CS department's personnel directory (a read-write
//     kvstore with native change callbacks) — the primary for phone data;
//   - "whois":   the campus whois mirror (a writable kvstore);
//   - "groupdb": the database group's relational database (our stand-in
//     for their Sybase server);
//   - "bib":     a read-only bibliographic information system.
//
// Copy constraints keep each person's phone number equal in lookup,
// whois and groupdb.  A referential constraint requires every paper in
// the bibliography by a group member to be mentioned in groupdb; since
// the bibliography is read-only, that constraint can only be monitored
// (Section 6.2's fallback), which a report-only sweeper does.
//
// Run with:
//
//	go run ./examples/stanford
package main

import (
	"fmt"
	"log"
	"time"

	"cmtk/internal/core"
	"cmtk/internal/guarantee"
	"cmtk/internal/rid"
	"cmtk/internal/ris/bibstore"
	"cmtk/internal/ris/kvstore"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/strategy"
	"cmtk/internal/translator"
	"cmtk/internal/vclock"
)

func main() {
	clk := vclock.NewVirtual(vclock.Epoch)

	// The four autonomous systems.
	lookup := kvstore.New("lookup", false, true)
	whois := kvstore.New("whois", false, false)
	groupdb := relstore.New("groupdb")
	mustExec(groupdb, "CREATE TABLE people (uname TEXT, phone TEXT, PRIMARY KEY (uname))")
	mustExec(groupdb, "CREATE TABLE papers (citekey TEXT, title TEXT, PRIMARY KEY (citekey))")
	bib := bibstore.New("bib")
	check(bib.Load(
		bibstore.Record{Key: "cgw96", Author: "Widom", Title: "A Toolkit for Constraint Management", Year: 1996, Venue: "ICDE"},
		bibstore.Record{Key: "w94", Author: "Widom", Title: "Proof Rules for Weak Consistency", Year: 1994, Venue: "TR"},
		bibstore.Record{Key: "gm92", Author: "Garcia-Molina", Title: "The Demarcation Protocol", Year: 1992, Venue: "EDBT"},
	))

	// CM-RIDs: one per system, each in its own native terms.
	lookupRID, err := rid.ParseString(`
kind kvstore
site Lookup
item phone1
  type string
  attr phone
interface Ws(phone1(n), b) ->2s N(phone1(n), b)
`)
	check(err)
	whoisRID, err := rid.ParseString(`
kind kvstore
site Whois
item phone2
  type string
  attr phone
interface WR(phone2(n), b) ->3s W(phone2(n), b)
`)
	check(err)
	groupRID, err := rid.ParseString(`
kind relstore
site GDB
item phone3
  type string
  read   SELECT phone FROM people WHERE uname = $n
  write  UPDATE people SET phone = $b WHERE uname = $n
  insert INSERT INTO people (uname, phone) VALUES ($n, $b)
  delete DELETE FROM people WHERE uname = $n
  list   SELECT uname FROM people
item paperrec
  type string
  read   SELECT title FROM papers WHERE citekey = $n
  write  UPDATE papers SET title = $b WHERE citekey = $n
  insert INSERT INTO papers (citekey, title) VALUES ($n, $b)
  delete DELETE FROM papers WHERE citekey = $n
  list   SELECT citekey FROM papers
interface WR(phone3(n), b) ->3s W(phone3(n), b)
interface WR(paperrec(n), b) ->3s W(paperrec(n), b)
`)
	check(err)
	bibRID, err := rid.ParseString(`
kind bibstore
site Bib
item paper
  type string
  field title
interface RR(paper(n)) && paper(n) = b ->1s R(paper(n), b)
`)
	check(err)

	// One shell serves Whois and GDB together (Figure 1's shared hosting);
	// Lookup and Bib get their own.
	tk := core.New(core.Config{Clock: clk, BusLatency: 100 * time.Millisecond, FireDelay: 50 * time.Millisecond})
	check(tk.AddSite(core.Site{RID: lookupRID, Local: &translator.LocalStores{KV: lookup}}))
	check(tk.AddSite(core.Site{RID: whoisRID, Local: &translator.LocalStores{KV: whois}, Shell: "hub"}))
	check(tk.AddSite(core.Site{RID: groupRID, Local: &translator.LocalStores{Rel: groupdb}, Shell: "hub"}))
	check(tk.AddSite(core.Site{RID: bibRID, Local: &translator.LocalStores{Bib: bib}}))
	check(tk.AddCopy(core.CopyConstraint{X: "phone1", Y: "phone2", Arity: 1}))
	check(tk.AddCopy(core.CopyConstraint{X: "phone1", Y: "phone3", Arity: 1}))
	check(tk.Deploy())
	check(tk.Start())
	defer tk.Stop()

	// Phone updates at the department directory ripple everywhere.
	fmt.Println("directory updates at lookup:")
	check(lookup.Set("widom", "phone", "650-723-0001"))
	check(lookup.Set("hector", "phone", "650-723-0002"))
	clk.Advance(5 * time.Second)
	check(lookup.Set("widom", "phone", "650-723-9999"))
	clk.Advance(5 * time.Second)

	w2, _ := whois.Get("widom", "phone")
	res, _ := groupdb.Exec("SELECT phone FROM people WHERE uname = 'widom'")
	fmt.Printf("  whois:   widom -> %s\n", w2)
	fmt.Printf("  groupdb: widom -> %s\n", res.Rows[0][0].Str())

	// The referential constraint over the read-only bibliography can only
	// be monitored: a report-only sweep counts bib papers missing from
	// groupdb (Section 6.2's fallback).
	bibIface, _ := tk.Interface("Bib")
	gdbIface, _ := tk.Interface("GDB")
	bibShell, ok := tk.ShellOfSite("Bib")
	if !ok {
		log.Fatal("no shell hosts Bib")
	}
	sweeper := strategy.NewSweeper(bibShell, clk, 24*time.Hour, bibIface, "paper", gdbIface, "paperrec")
	sweeper.ReportOnly = true

	// groupdb mentions two of the three papers.
	mustExec(groupdb, "INSERT INTO papers VALUES ('cgw96', 'A Toolkit for Constraint Management')")
	mustExec(groupdb, "INSERT INTO papers VALUES ('gm92', 'The Demarcation Protocol')")
	sweeper.SweepNow()
	_, orphans, _ := sweeper.Stats()
	fmt.Printf("\nreferential monitor: %d bibliography paper(s) missing from groupdb\n", orphans)

	// Repair and re-check.
	mustExec(groupdb, "INSERT INTO papers VALUES ('w94', 'Proof Rules for Weak Consistency')")
	sweeper.SweepNow()
	_, orphans2, _ := sweeper.Stats()
	fmt.Printf("after adding the missing record: %d new orphan(s) on the next sweep\n", orphans2-orphans)

	// Validity of the whole run.
	if vs := tk.CheckTrace(); len(vs) > 0 {
		log.Fatalf("trace violations: %v", vs)
	}
	fmt.Println("\nexecution valid; copy-constraint guarantees:")
	reports := tk.CheckGuarantees()
	for _, rep := range reports {
		fmt.Printf("  %s\n", rep)
	}
	if !guarantee.AllHold(reports) {
		log.Fatal("guarantee violated")
	}
}

func mustExec(db *relstore.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatal(err)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
