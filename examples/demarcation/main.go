// Demarcation: the Section 6.1 scenario.  Two sites hold X and Y under
// the inter-site constraint X ≤ Y.  The Demarcation Protocol [BGM92]
// maintains local limits Lx and Ly with X ≤ Lx ≤ Ly ≤ Y, so the
// constraint holds at every instant with no distributed transactions:
// updates within the local limit cost zero messages, and only
// limit-crossing updates trigger a request/grant exchange.
//
// Run with:
//
//	go run ./examples/demarcation
package main

import (
	"fmt"
	"log"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/demarcation"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/trace"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

func main() {
	clk := vclock.NewVirtual(vclock.Epoch)
	tr := trace.New(nil)
	spec, err := rule.ParseSpecString(`
site SX
site SY
item X @ SX
item Y @ SY
private Lx @ SX
private Ly @ SY
`)
	check(err)
	bus := transport.NewBus(clk, 100*time.Millisecond)
	opts := shell.Options{Clock: clk, Trace: tr}
	sx := shell.New("sx", spec, opts)
	sx.AddSite("SX", nil)
	sx.Route("SY", "sy")
	sy := shell.New("sy", spec, opts)
	sy.AddSite("SY", nil)
	sy.Route("SX", "sx")
	check(sx.Attach(bus))
	check(sy.Attach(bus))
	check(sx.Start())
	check(sy.Start())
	defer sx.Stop()
	defer sy.Stop()

	// X starts at 0 with ceiling 50; Y at 100 with floor 50.
	xa := demarcation.NewAgent(sx, "SX", "sy", data.Item("X"), data.Item("Lx"), true, demarcation.Generous)
	ya := demarcation.NewAgent(sy, "SY", "sx", data.Item("Y"), data.Item("Ly"), false, demarcation.Generous)
	xa.Init(0, 50)
	ya.Init(100, 50)
	clk.Advance(time.Second)

	fmt.Printf("initial: X=%d Lx=%d   Ly=%d Y=%d\n", xa.Value(), xa.Limit(), ya.Limit(), ya.Value())

	// Forty +1 increments at X: the first fifty would fit the limit, so
	// these are all local.
	for i := 0; i < 40; i++ {
		xa.Update(1, nil)
	}
	clk.Advance(time.Second)
	st := xa.Stats()
	fmt.Printf("after 40 small increments: X=%d, %d local ops, %d remote asks\n",
		xa.Value(), st.LocalOps, st.RemoteAsks)

	// A +30 jump crosses Lx=50: the protocol asks Y's site to raise Ly
	// first, then raises Lx, then applies — X ≤ Y never violated.
	done := make(chan bool, 1)
	xa.Update(30, func(ok bool) { done <- ok })
	clk.Advance(5 * time.Second)
	fmt.Printf("after +30 crossing the limit (granted=%v): X=%d Lx=%d   Ly=%d Y=%d\n",
		<-done, xa.Value(), xa.Limit(), ya.Limit(), ya.Value())

	// Y tries to drop below what X permits: denied.
	xaV, yaV := xa.Value(), ya.Value()
	ya.Update(-(yaV - xaV + 10), func(ok bool) { done <- ok })
	clk.Advance(5 * time.Second)
	fmt.Printf("Y's attempt to drop below X (granted=%v): X=%d Y=%d\n", <-done, xa.Value(), ya.Value())

	// The protocol's guarantee, machine-checked over every recorded state.
	rep := demarcation.Guarantee("X", "Y").Check(tr)
	fmt.Printf("\n%s\n  formula: %s\n", rep, rep.Formula)
	if !rep.Holds {
		log.Fatal("invariant violated!")
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
