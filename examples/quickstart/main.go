// Quickstart: maintain a copy constraint between two relational databases
// with the toolkit's public facade, on a virtual clock, and check both
// the Appendix A.2 execution properties and the Section 3.3 guarantees.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"cmtk/internal/core"
	"cmtk/internal/rid"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/translator"
	"cmtk/internal/vclock"
)

func main() {
	// Two autonomous databases.  A is the branch office (it will notify
	// the constraint manager of changes); B is headquarters (it accepts
	// write requests).
	dbA := relstore.New("branch")
	mustExec(dbA, "CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")
	dbB := relstore.New("hq")
	mustExec(dbB, "CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")

	// CM-RIDs describe each source to the toolkit: how items map onto SQL
	// and which interface statements the site honors (Section 4.1).
	cfgA, err := rid.ParseString(`
kind relstore
site A
item salary1
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary
interface Ws(salary1(n), b) ->2s N(salary1(n), b)
`)
	check(err)
	cfgB, err := rid.ParseString(`
kind relstore
site B
item salary2
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  write  UPDATE employees SET salary = $b WHERE empid = $n
  insert INSERT INTO employees (empid, salary) VALUES ($n, $b)
  delete DELETE FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
interface WR(salary2(n), b) ->3s W(salary2(n), b)
`)
	check(err)

	// Assemble and start the deployment on a virtual clock.
	clk := vclock.NewVirtual(vclock.Epoch)
	tk := core.New(core.Config{Clock: clk, BusLatency: 100 * time.Millisecond, FireDelay: 50 * time.Millisecond})
	check(tk.AddSite(core.Site{RID: cfgA, Local: &translator.LocalStores{Rel: dbA}}))
	check(tk.AddSite(core.Site{RID: cfgB, Local: &translator.LocalStores{Rel: dbB}}))
	check(tk.AddCopy(core.CopyConstraint{X: "salary1", Y: "salary2", Arity: 1}))

	// Before deploying, ask what the toolkit would suggest.
	sugg, err := tk.Suggestions(core.CopyConstraint{X: "salary1", Y: "salary2", Arity: 1})
	check(err)
	fmt.Println("applicable strategies:")
	for _, s := range sugg {
		fmt.Printf("  %-20s %s\n", s.Name, s.Description)
	}

	check(tk.Deploy())
	check(tk.Start())
	defer tk.Stop()

	// A local application updates the branch database; the toolkit
	// propagates.
	fmt.Println("\napplication writes at A:")
	mustExec(dbA, "INSERT INTO employees VALUES ('e1', 100)")
	clk.Advance(20 * time.Second)
	mustExec(dbA, "UPDATE employees SET salary = 150 WHERE empid = 'e1'")
	clk.Advance(20 * time.Second)
	mustExec(dbA, "UPDATE employees SET salary = 175 WHERE empid = 'e1'")
	clk.Advance(20 * time.Second)

	res, err := dbB.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
	check(err)
	fmt.Printf("  B now has e1 salary = %s\n", res.Rows[0][0])

	// Machine-check the run: execution validity and guarantees.
	if vs := tk.CheckTrace(); len(vs) > 0 {
		log.Fatalf("execution violates Appendix A.2: %v", vs)
	}
	fmt.Println("\nexecution is a valid trace (Appendix A.2); guarantees:")
	for _, rep := range tk.CheckGuarantees() {
		fmt.Printf("  %s\n", rep)
	}
}

func mustExec(db *relstore.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatal(err)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
