// Monitor: the Section 6.3 scenario.  Both X and Y offer notify
// interfaces but neither can be written by the constraint manager, so the
// best the CM can do is monitor the copy constraint X = Y.  The monitor
// strategy maintains the auxiliary items Flag and Tb at the application's
// site, offering the guarantee
//
//	((Flag = true) ∧ (Tb = s))@t  ⇒  (X = Y)@@[s, t−κ]
//
// An application reads Flag/Tb through the shell's programmatic interface
// (Section 4.1) to decide whether a past query ran on consistent data
// (Section 7.1).
//
// Run with:
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/strategy"
	"cmtk/internal/trace"
	"cmtk/internal/vclock"
)

func main() {
	clk := vclock.NewVirtual(vclock.Epoch)
	tr := trace.New(nil)
	// X and Y live at site M with notify-only access: the Ws->N rules
	// stand in for the two databases' notify interfaces.
	spec, err := rule.ParseSpecString(`
site M
item X @ M
item Y @ M
rule nx: Ws(X, b) ->1s N(X, b)
rule ny: Ws(Y, b) ->1s N(Y, b)
`)
	check(err)
	ch, err := strategy.Monitor(strategy.Copy{X: "X", Y: "Y"}, "M",
		strategy.Options{Delta: 2 * time.Second, Bound: 10 * time.Second})
	check(err)
	check(strategy.Merge(spec, ch))
	fmt.Println("monitor strategy rules:")
	for _, r := range ch.Rules {
		fmt.Printf("  %s\n", r)
	}

	sh := shell.New("m", spec, shell.Options{Clock: clk, Trace: tr})
	sh.AddSite("M", nil)
	check(sh.Start())
	defer sh.Stop()

	flag, tb := data.Item("Flag_XY"), data.Item("Tb_XY")
	x, y := data.Item("X"), data.Item("Y")
	show := func(when string) {
		f, _ := sh.ReadAux(flag)
		t, ok := sh.ReadAux(tb)
		tStr := "unset"
		if ok {
			if at, ok2 := vclock.ValueTime(t); ok2 {
				tStr = at.Format("15:04:05")
			}
		}
		fmt.Printf("%-28s Flag=%-5v Tb=%s\n", when, f.Truthy(), tStr)
	}

	sh.Spontaneous(x, data.NullValue, data.NewInt(1))
	sh.Spontaneous(y, data.NullValue, data.NewInt(1))
	clk.Advance(5 * time.Second)
	show("after both agree at 1:")

	sh.Spontaneous(x, data.NewInt(1), data.NewInt(2))
	clk.Advance(5 * time.Second)
	show("after X moves to 2:")

	clk.Advance(40 * time.Second)
	sh.Spontaneous(y, data.NewInt(1), data.NewInt(2))
	clk.Advance(5 * time.Second)
	show("after Y catches up:")

	// The application's question (Section 7.1): did X = Y hold when my
	// query ran?  Reading Flag and Tb answers it from local data only.
	f, _ := sh.ReadAux(flag)
	tbv, _ := sh.ReadAux(tb)
	since, _ := vclock.ValueTime(tbv)
	if f.Truthy() {
		fmt.Printf("\napplication: constraint has held since %s (minus κ) — results computed after that are trustworthy\n",
			since.Format("15:04:05"))
	}

	rep := ch.Guarantees[0].Check(tr)
	fmt.Printf("\nguarantee check over the recorded execution:\n  %s\n  formula: %s\n", rep, rep.Formula)
	if !rep.Holds {
		log.Fatal("monitor guarantee violated")
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
