module cmtk

go 1.22
