// Command cmbench runs the experiment suite that reproduces the paper's
// scenarios (see DESIGN.md §4 and EXPERIMENTS.md) and prints the result
// tables.
//
// Usage:
//
//	cmbench [-scale N] [-exp E1,E2,...] [-obs]
//
// -obs snapshots the process-wide metrics registry around each
// experiment and prints the per-experiment deltas (every counter and
// histogram series that moved), so a run doubles as an instrumentation
// audit.  See OBSERVABILITY.md for the metric catalogue.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cmtk/internal/harness"
	"cmtk/internal/obs"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale factor")
	exps := flag.String("exp", "all", "comma-separated experiment ids (E1..E13, F1, F2) or 'all'")
	obsMode := flag.Bool("obs", false, "print per-experiment metric deltas from the obs registry")
	flag.Parse()

	runners := map[string]func() harness.Table{
		"E1":  func() harness.Table { return harness.E1(100 * *scale) },
		"E2":  func() harness.Table { return harness.E2(60 * *scale) },
		"E3":  func() harness.Table { return harness.E3(150 * *scale) },
		"E4":  func() harness.Table { return harness.E4(200 * *scale) },
		"E5":  func() harness.Table { return harness.E5(8 * *scale) },
		"E6":  func() harness.Table { return harness.E6(10 * *scale) },
		"E7":  func() harness.Table { return harness.E7(4 * *scale) },
		"E8":  func() harness.Table { return harness.E8() },
		"E9":  func() harness.Table { return harness.E9(60 * *scale) },
		"E10": func() harness.Table { return harness.E10(20 * *scale) },
		"E11": func() harness.Table { return harness.E11(4 * *scale) },
		"E12": func() harness.Table { return harness.E12(3 * *scale) },
		"E13": func() harness.Table { return harness.E13(3 * *scale) },
		"F1":  func() harness.Table { return harness.F1(100 * *scale) },
		"F2":  func() harness.Table { return harness.F2(30 * *scale) },
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "F1", "F2"}

	var selected []string
	if *exps == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "cmbench: unknown experiment %q (want E1..E13, F1, F2)\n", id)
				os.Exit(2)
			}
			selected = append(selected, id)
		}
	}
	for _, id := range selected {
		before := obs.Default.Snapshot()
		fmt.Println(runners[id]())
		if *obsMode {
			delta := obs.Default.Snapshot().Delta(before)
			fmt.Printf("-- %s metric deltas (%d series moved) --\n%s\n", id, len(delta), delta.Format())
		}
	}
}
