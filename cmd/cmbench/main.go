// Command cmbench runs the experiment suite that reproduces the paper's
// scenarios (see DESIGN.md §4 and EXPERIMENTS.md) and prints the result
// tables.
//
// Usage:
//
//	cmbench [-scale N] [-exp E1,E2,...] [-obs] [-json FILE] [-fleetjson FILE] [-retainjson FILE]
//
// -obs snapshots the process-wide metrics registry around each
// experiment and prints the per-experiment deltas (every counter and
// histogram series that moved), so a run doubles as an instrumentation
// audit.  See OBSERVABILITY.md for the metric catalogue.
//
// -json writes the engine benchmark rows to FILE as a benchstat-friendly
// JSON object with two arrays: "e14" (engine saturation, old path vs new
// path: events/sec, ns/event, B/event, allocs/event per grid point) and
// "e16" (core scaling: events/sec per GOMAXPROCS × bases arm on the
// partitioned engine).  Successive runs can be diffed; the committed
// BENCH_E14.json at the repo root is generated this way.
//
// -fleetjson writes the E17 horizontal-saturation rows (fleet throughput
// per shell count × constraint count arm, plus the live-rebalance arm)
// under an "e17" key in FILE.
//
// Both -json and -fleetjson merge key-wise into an existing FILE: each
// rewrites only its own keys and preserves the others, so the e14/e16
// and e17 sweeps compose into one BENCH_E14.json no matter which ran
// last.
//
// -loadjson does the same for the E15 chaos-soak rows (rate × fault
// campaign: sustained events/sec, latency quantiles, deadline misses,
// recovery time); the committed BENCH_LOAD.json is generated this way.
//
// -retainjson merges the E18 bounded-memory retention rows (a 10M-event
// flat-RSS soak with durable checkpoint cold start, plus a smaller
// equivalence arm checked against an unpruned control) under an "e18"
// key, composing into the same BENCH_E14.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cmtk/internal/harness"
	"cmtk/internal/obs"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale factor")
	exps := flag.String("exp", "all", "comma-separated experiment ids (E1..E18, F1, F2) or 'all'")
	obsMode := flag.Bool("obs", false, "print per-experiment metric deltas from the obs registry")
	jsonOut := flag.String("json", "", "write E14+E16 engine rows to this file as JSON (merged key-wise) and exit")
	fleetOut := flag.String("fleetjson", "", "write E17 fleet-scaling rows to this file as JSON (merged key-wise) and exit")
	loadOut := flag.String("loadjson", "", "write E15 chaos-soak rows to this file as JSON and exit")
	retainOut := flag.String("retainjson", "", "write E18 retention-soak rows (10M-event soak + equivalence arm) to this file as JSON (merged key-wise) and exit")
	flag.Parse()

	writeRows := func(path, what string, rows any, n int) {
		buf, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmbench: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cmbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d %s rows to %s\n", n, what, path)
	}
	// mergeRows rewrites only the given keys of the JSON object at path,
	// preserving every other key an earlier sweep wrote there.
	mergeRows := func(path, what string, keys map[string]any, n int) {
		merged := map[string]json.RawMessage{}
		if prev, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(prev, &merged); err != nil {
				fmt.Fprintf(os.Stderr, "cmbench: %s exists but is not a JSON object (%v); refusing to merge\n", path, err)
				os.Exit(1)
			}
		}
		for k, v := range keys {
			buf, err := json.Marshal(v)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cmbench: %v\n", err)
				os.Exit(1)
			}
			merged[k] = buf
		}
		writeRows(path, what, merged, n)
	}
	if *jsonOut != "" {
		e14 := harness.E14Rows(1000 * *scale)
		e16 := harness.E16Rows(2000 * *scale)
		mergeRows(*jsonOut, "E14+E16", map[string]any{"e14": e14, "e16": e16}, len(e14)+len(e16))
		return
	}
	if *fleetOut != "" {
		e17 := harness.E17Rows(2000 * *scale)
		mergeRows(*fleetOut, "E17", map[string]any{"e17": e17}, len(e17))
		return
	}
	if *loadOut != "" {
		rows := harness.E15Rows(60 * *scale)
		writeRows(*loadOut, "E15", rows, len(rows))
		return
	}
	if *retainOut != "" {
		// 5M updates record two events each: the 10M-event flat-RSS soak.
		e18 := harness.E18Rows(5_000_000**scale, 100_000**scale)
		mergeRows(*retainOut, "E18", map[string]any{"e18": e18}, len(e18))
		return
	}

	runners := map[string]func() harness.Table{
		"E1":  func() harness.Table { return harness.E1(100 * *scale) },
		"E2":  func() harness.Table { return harness.E2(60 * *scale) },
		"E3":  func() harness.Table { return harness.E3(150 * *scale) },
		"E4":  func() harness.Table { return harness.E4(200 * *scale) },
		"E5":  func() harness.Table { return harness.E5(8 * *scale) },
		"E6":  func() harness.Table { return harness.E6(10 * *scale) },
		"E7":  func() harness.Table { return harness.E7(4 * *scale) },
		"E8":  func() harness.Table { return harness.E8() },
		"E9":  func() harness.Table { return harness.E9(60 * *scale) },
		"E10": func() harness.Table { return harness.E10(20 * *scale) },
		"E11": func() harness.Table { return harness.E11(4 * *scale) },
		"E12": func() harness.Table { return harness.E12(3 * *scale) },
		"E13": func() harness.Table { return harness.E13(3 * *scale) },
		"E14": func() harness.Table { return harness.E14(1000 * *scale) },
		"E15": func() harness.Table { return harness.E15(60 * *scale) },
		"E16": func() harness.Table { return harness.E16(2000 * *scale) },
		"E17": func() harness.Table { return harness.E17(2000 * *scale) },
		"E18": func() harness.Table { return harness.E18(40000**scale, 20000**scale) },
		"F1":  func() harness.Table { return harness.F1(100 * *scale) },
		"F2":  func() harness.Table { return harness.F2(30 * *scale) },
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "F1", "F2"}

	var selected []string
	if *exps == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "cmbench: unknown experiment %q (want E1..E18, F1, F2)\n", id)
				os.Exit(2)
			}
			selected = append(selected, id)
		}
	}
	for _, id := range selected {
		before := obs.Default.Snapshot()
		fmt.Println(runners[id]())
		if *obsMode {
			delta := obs.Default.Snapshot().Delta(before)
			fmt.Printf("-- %s metric deltas (%d series moved) --\n%s\n", id, len(delta), delta.Format())
		}
	}
}
