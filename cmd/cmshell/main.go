// Command cmshell runs one CM-Shell process of a distributed deployment:
// it loads a Strategy Specification and the CM-RIDs for the sites it
// hosts, dials the Raw Information Sources, joins the shell mesh over
// TCP, and executes its share of the strategy rules (Figure 2's top
// layer).
//
// Usage:
//
//	cmshell -id shellA -spec strategy.spec \
//	        -rid a.rid -host A \
//	        -listen 127.0.0.1:9001 \
//	        -peer shellB=127.0.0.1:9002 -route B=shellB
//
// Every -rid names a CM-RID file; -host marks which of its sites this
// shell hosts (defaults to all RIDs given).  -peer maps peer shell IDs to
// their mesh addresses, and -route maps remote sites to the peer shells
// hosting them.
//
// Mesh links are reliable by default (sequencing, ack-driven retry,
// outage buffering with ordered replay); acks flow back over the mesh,
// so every pair of communicating shells should list each other in -peer.
// -unreliable reverts to raw fire-and-forget TCP sends.
//
// -workers selects the engine: the default 1 is the classic serial
// engine, N > 1 runs the partitioned parallel engine on N workers, and
// 0 (or any non-positive value) resolves to GOMAXPROCS.  Serial stays
// the default because a shell is usually one of several processes on a
// box; taking every core should be an explicit choice.  DESIGN.md §9
// documents the concurrency model and what it preserves.
//
// -metrics-addr starts the observability surface: /metrics serves the
// process-wide registry in Prometheus text format (shell, translator,
// and transport metrics), and /debug/traces dumps the rule-firing trace
// ring as JSON.  See OBSERVABILITY.md for the full catalogue.
//
// -route-table joins a sharded fleet (DESIGN.md §10): the shell loads
// the fleet route table from the given JSON file (written by `cmctl
// ring -write` or a fleet controller) and resolves constraint ownership
// through it instead of the static site map — it executes the rules
// anchored on bases the table assigns to its -id, forwards external
// triggers for other shells' bases to their owners, and re-forwards
// in-flight fires that arrive under a stale epoch.  Every member of a
// fleet must be started with the same table and list every other member
// in -peer.
//
// -state-dir makes the shell crash-recoverable: the reliable transport's
// outbox and dedup cursors and the shell's CM-private items journal into
// write-ahead logs there, so a killed process comes back up, replays its
// unacked fires in order, and keeps deduplicating retransmits it already
// processed — a crash stays the Section 5 *metric* failure instead of
// silently losing messages.  -wal-sync picks the fsync policy
// (always|interval|never).  A clean shutdown leaves a marker that lets
// the next start skip replay reporting ("warm"); after a kill the start
// is "cold" and reports what it recovered.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cmtk/internal/cmi"
	"cmtk/internal/durable"
	"cmtk/internal/fleet"
	"cmtk/internal/obs"
	"cmtk/internal/rid"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/translator"
	"cmtk/internal/transport"
	"cmtk/internal/wire"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	id := flag.String("id", "", "shell ID (required)")
	specPath := flag.String("spec", "", "strategy specification file (required)")
	listen := flag.String("listen", "127.0.0.1:0", "mesh listen address")
	unreliable := flag.Bool("unreliable", false, "raw mesh sends: no retry, no outage buffering")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/traces on this address (empty: off)")
	stateDir := flag.String("state-dir", "", "durable state directory: journal outbox and private items for crash recovery (empty: in-memory only)")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always|interval|never")
	workers := flag.Int("workers", 1, "engine worker count: 1 = serial, N > 1 = partitioned parallel engine, <= 0 = auto (GOMAXPROCS)")
	routeTable := flag.String("route-table", "", "fleet route-table JSON file: shard constraint ownership across the mesh (empty: static site routing)")
	retry := flag.Duration("retry", 200*time.Millisecond, "reliable-link base retransmit interval")
	dialTimeout := flag.Duration("dial-timeout", 5*time.Second, "mesh peer dial timeout")
	reqTimeout := flag.Duration("req-timeout", 10*time.Second, "mesh request timeout")
	var ridPaths, peers, routes repeated
	flag.Var(&ridPaths, "rid", "CM-RID file for a hosted site (repeatable)")
	flag.Var(&peers, "peer", "peer shell as id=addr (repeatable)")
	flag.Var(&routes, "route", "remote site as site=shellID (repeatable)")
	flag.Parse()
	if *id == "" || *specPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	specFile, err := os.Open(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := rule.ParseSpec(specFile)
	specFile.Close()
	if err != nil {
		log.Fatal(err)
	}

	if *metricsAddr != "" {
		srv, bound, err := obs.Serve(*metricsAddr, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("cmshell: observability on http://%s (/metrics, /debug/traces)\n", bound)
	}

	var store *durable.Store
	if *stateDir != "" {
		policy, err := durable.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Fatalf("cmshell: %v", err)
		}
		store, err = durable.Open(*stateDir, durable.Options{Sync: policy})
		if err != nil {
			log.Fatalf("cmshell: opening state dir: %v", err)
		}
		start := "cold (recovering journals)"
		if store.WasClean() {
			start = "warm (clean shutdown marker found)"
		}
		fmt.Printf("cmshell: durable state in %s, %s start, wal-sync=%s\n", *stateDir, start, policy)
	}

	if *workers <= 0 {
		*workers = shell.WorkersAuto
	}
	shellOpts := shell.Options{Workers: *workers}
	var router *fleet.Router
	if *routeTable != "" {
		tab, err := fleet.ReadFile(*routeTable)
		if err != nil {
			log.Fatalf("cmshell: %v", err)
		}
		found := false
		for _, m := range tab.Members {
			if m == *id {
				found = true
				break
			}
		}
		if !found {
			log.Fatalf("cmshell: route table %s (epoch %d) does not list member %q", *routeTable, tab.Epoch, *id)
		}
		router = fleet.NewRouter(*id, obs.Default)
		router.Install(tab)
		shellOpts.Router = router
		fmt.Printf("cmshell: fleet member %s of %d, route table epoch %d, owning %d base(s)\n",
			*id, len(tab.Members), tab.Epoch, tab.Counts()[*id])
	}
	sh := shell.New(*id, spec, shellOpts)
	if router != nil {
		// Fleet members address each other through the ownership table, so
		// every mesh peer is a propagation peer even when it hosts no site.
		for _, p := range peers {
			if name, _, ok := strings.Cut(p, "="); ok && name != *id {
				sh.AddPeer(name)
			}
		}
	}
	if w := sh.Workers(); w > 1 {
		fmt.Printf("cmshell: partitioned engine, %d workers\n", w)
	}
	if store != nil {
		restored, err := sh.EnableDurable(store)
		if err != nil {
			log.Fatalf("cmshell: durable private state: %v", err)
		}
		if restored > 0 {
			fmt.Printf("cmshell: recovered %d private item(s)\n", restored)
		}
	}
	for _, p := range ridPaths {
		cfg, err := rid.ParseFile(p)
		if err != nil {
			log.Fatalf("cmshell: %s: %v", p, err)
		}
		if cfg.Local() {
			log.Fatalf("cmshell: %s: distributed shells need networked sources (addr ...)", p)
		}
		iface, err := translator.Open(cfg, nil, nil)
		if err != nil {
			log.Fatalf("cmshell: connecting to %s: %v", cfg.Site, err)
		}
		sh.AddSite(cfg.Site, iface)
		fmt.Printf("cmshell: hosting site %s via %s source at %s\n", cfg.Site, cfg.Kind, cfg.Addr)
	}

	addrs := map[string]string{}
	for _, p := range peers {
		name, addr, ok := strings.Cut(p, "=")
		if !ok {
			log.Fatalf("cmshell: bad -peer %q (want id=addr)", p)
		}
		addrs[name] = addr
	}
	for _, r := range routes {
		site, shellID, ok := strings.Cut(r, "=")
		if !ok {
			log.Fatalf("cmshell: bad -route %q (want site=shellID)", r)
		}
		sh.Route(site, shellID)
	}
	dialOpts := []wire.DialOption{
		wire.WithDialTimeout(*dialTimeout),
		wire.WithRequestTimeout(*reqTimeout),
	}
	var ep transport.Endpoint
	var rel *transport.ReliableEndpoint
	if *unreliable {
		mesh, err := transport.NewTCP(*id, *listen, addrs, sh.Receive, dialOpts...)
		if err != nil {
			log.Fatal(err)
		}
		ep = mesh
		fmt.Printf("cmshell: %s (raw links) listening on %s\n", *id, mesh.Addr())
	} else {
		rel = transport.NewReliableEndpoint(sh.Receive, transport.ReliableOptions{RetryInterval: *retry, Name: *id})
		if store != nil {
			replayed, err := rel.EnableJournal(store, "rel-"+*id)
			if err != nil {
				log.Fatalf("cmshell: durable transport state: %v", err)
			}
			if replayed > 0 {
				fmt.Printf("cmshell: replaying %d unacked message(s) from the journal\n", replayed)
			}
		}
		mesh, err := transport.NewTCP(*id, *listen, addrs, rel.Deliver, dialOpts...)
		if err != nil {
			log.Fatal(err)
		}
		rel.Bind(mesh)
		rel.OnLinkEvent(func(ev transport.LinkEvent) {
			log.Printf("cmshell: link %s %s (attempts=%d messages=%d)", ev.Peer, ev.Kind, ev.Attempts, ev.Messages)
		})
		ep = rel
		fmt.Printf("cmshell: %s (reliable links) listening on %s\n", *id, mesh.Addr())
	}
	sh.AttachEndpoint(ep)

	sh.OnFailure(func(f cmi.Failure) { log.Printf("cmshell: %s", f) })
	if err := sh.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cmshell: running; ^C or SIGTERM to stop")
	// Graceful shutdown: cancel subscriptions and timers, then close the
	// mesh endpoint (Stop closes it) instead of dying mid-frame.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("cmshell: %s, shutting down\n", got)
	if rel != nil {
		for _, p := range peers {
			if name, _, ok := strings.Cut(p, "="); ok && rel.Pending(name) > 0 {
				log.Printf("cmshell: %d message(s) to %s still unacked", rel.Pending(name), name)
			}
		}
	}
	sh.Stop()
	if store != nil {
		// Final checkpoints, flush, and the clean-shutdown marker: the next
		// start is warm instead of replaying the whole journal.
		if err := store.Close(); err != nil {
			log.Printf("cmshell: closing durable state: %v", err)
		} else {
			fmt.Println("cmshell: durable state closed cleanly")
		}
	}
}
