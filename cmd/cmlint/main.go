// cmlint is the toolkit's invariant checker: a multichecker driving the
// repo-specific analyzers in internal/analysis over the source tree.
// CI runs it on every push; any diagnostic is a failure.
//
// Usage:
//
//	go run ./cmd/cmlint ./...        # check the whole tree
//	go run ./cmd/cmlint ./internal/shell ./internal/trace
//	go run ./cmd/cmlint -list        # describe the analyzers
//
// Diagnostics print as file:line:col: [analyzer] message.  A finding is
// suppressed — with a mandatory justification — by a comment on the
// offending line or the line above:
//
//	//cmlint:allow wallclock(Real is the bridge to the system clock)
//
// DESIGN.md §11 documents each analyzer and the invariant it encodes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cmtk/internal/analysis"
	"cmtk/internal/analysis/goroleak"
	"cmtk/internal/analysis/lockorder"
	"cmtk/internal/analysis/metricname"
	"cmtk/internal/analysis/wallclock"
	"cmtk/internal/analysis/wireready"
)

var analyzers = []*analysis.Analyzer{
	lockorder.Analyzer,
	wallclock.Analyzer,
	metricname.Analyzer,
	wireready.Analyzer,
	goroleak.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cmlint [-list] [-only a,b] [packages]\n\npatterns: directories, or dir/... for a subtree; default ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := analyzers
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "cmlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, modRoot, err := load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmlint: %v\n", err)
		os.Exit(2)
	}

	diags, err := analysis.Run(pkgs, selected, modRoot)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(mustGetwd(), pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cmlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// load resolves ./...-style patterns into parsed packages, deduplicated
// by directory.
func load(patterns []string) ([]*analysis.Package, string, error) {
	modRoot, modPath, err := analysis.FindModule(".")
	if err != nil {
		return nil, "", err
	}
	seen := map[string]bool{}
	var pkgs []*analysis.Package
	add := func(ps ...*analysis.Package) {
		for _, p := range ps {
			if p != nil && !seen[p.Dir] {
				seen[p.Dir] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := rest
			if root == "." || root == "" {
				root = "."
			}
			tree, err := analysis.LoadTree(root, analysis.LoadOptions{})
			if err != nil {
				return nil, "", fmt.Errorf("load %s: %w", pat, err)
			}
			add(tree...)
			continue
		}
		pkg, err := analysis.LoadDir(pat, modRoot, modPath, analysis.LoadOptions{})
		if err != nil {
			return nil, "", fmt.Errorf("load %s: %w", pat, err)
		}
		if pkg == nil {
			return nil, "", fmt.Errorf("load %s: no Go files", pat)
		}
		add(pkg)
	}
	return pkgs, modRoot, nil
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return wd
}
