// Command risd serves a Raw Information Source over TCP in its native
// dialect, playing the role of an autonomous database in a distributed
// toolkit deployment (Figure 2's bottom layer).
//
// Usage:
//
//	risd -kind relstore -addr 127.0.0.1:7001 [-demo]
//	risd -kind kvstore  -addr 127.0.0.1:7002 [-readonly] [-notify] [-demo]
//	risd -kind filestore -addr 127.0.0.1:7003 -dir /var/data
//	risd -kind bibstore -addr 127.0.0.1:7004 [-demo]
//
// -demo preloads a small employees/whois/bibliography dataset so the
// examples can be run against live servers.  -metrics-addr starts the
// observability surface (/metrics in Prometheus text format, covering
// cmtk_ris_requests_total and cmtk_ris_pushes_total; see
// OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"cmtk/internal/obs"
	"cmtk/internal/ris/bibstore"
	"cmtk/internal/ris/filestore"
	"cmtk/internal/ris/kvstore"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/ris/server"
	"cmtk/internal/wire"
)

func main() {
	kind := flag.String("kind", "relstore", "source kind: relstore | kvstore | filestore | bibstore")
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	dir := flag.String("dir", "", "data directory (filestore)")
	name := flag.String("name", "ris", "source name")
	readonly := flag.Bool("readonly", false, "serve read-only (kvstore)")
	notify := flag.Bool("notify", true, "offer native change callbacks (kvstore)")
	demo := flag.Bool("demo", false, "preload demo data")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/traces on this address (empty: off)")
	flag.Parse()

	if *metricsAddr != "" {
		osrv, bound, err := obs.Serve(*metricsAddr, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer osrv.Close()
		fmt.Printf("risd: observability on http://%s (/metrics, /debug/traces)\n", bound)
	}

	var srv *wire.Server
	var err error
	switch *kind {
	case "relstore":
		db := relstore.New(*name)
		if *demo {
			mustExec(db, "CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")
			mustExec(db, "INSERT INTO employees VALUES ('e1', 100)")
			mustExec(db, "INSERT INTO employees VALUES ('e2', 200)")
		}
		srv, err = server.ServeRel(*addr, db)
	case "kvstore":
		s := kvstore.New(*name, *readonly, *notify)
		if *demo {
			s.SeedSet("ann", "phone", "555-0101")
			s.SeedSet("bob", "phone", "555-0102")
		}
		srv, err = server.ServeKV(*addr, s)
	case "filestore":
		if *dir == "" {
			log.Fatal("risd: filestore needs -dir")
		}
		s, ferr := filestore.Open(*dir, *readonly)
		if ferr != nil {
			log.Fatal(ferr)
		}
		srv, err = server.ServeFile(*addr, s)
	case "bibstore":
		s := bibstore.New(*name)
		if *demo {
			s.Load(
				bibstore.Record{Key: "cgw96", Author: "Chawathe", Title: "A Toolkit for Constraint Management", Year: 1996, Venue: "ICDE"},
				bibstore.Record{Key: "bgm92", Author: "Barbara", Title: "The Demarcation Protocol", Year: 1992, Venue: "EDBT"},
			)
		}
		srv, err = server.ServeBib(*addr, s)
	default:
		log.Fatalf("risd: unknown kind %q", *kind)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("risd: serving %s %q on %s\n", *kind, *name, srv.Addr())
	// Shut down gracefully on SIGINT/SIGTERM: stop accepting, close the
	// listener and live sessions instead of dying mid-frame.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("risd: %s, shutting down\n", got)
	if err := srv.Close(); err != nil {
		log.Printf("risd: close: %v", err)
	}
}

func mustExec(db *relstore.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatal(err)
	}
}
