// Command cmload is the toolkit's open-loop load generator: it fires
// application updates at planned instants — constant, ramped, or spiking
// arrival rates — whether or not the mesh has absorbed the previous
// ones, so saturation and overload are actually reachable (a closed-loop
// driver slows down with the system and can never push it past the
// knee).  Every update carries a deadline; the run reports p50/p99/p999
// trigger-to-execution latency from the internal/obs histograms plus
// exact deadline-miss, shed, and buffer-drop counts.
//
// Self-contained mode (the default) assembles a live two-shell payroll
// mesh in-process — branch database, HQ replica, the copy constraint,
// reliable links over real loopback TCP sockets — and drives it:
//
//	cmload -schedule const:200:10s -deadline 2s
//	cmload -schedule spike:50:2000:30s:10s:5s -queue-limit 256 -admission shed
//	cmload -schedule ramp:10:500:20s -campaign partition:5s:3s -campaign skew:B:2s:5s:3s
//
// Fault campaigns (-campaign, repeatable) run on the internal/chaos
// scheduler against the in-process mesh while the load is offered:
//
//	partition:AT:DUR          sever both link directions for DUR
//	lossy:P:AT:DUR            drop each message with probability P
//	slow:P:BY:AT:DUR          delay each message by BY with probability P
//	skew:SHELL:OFF:AT:DUR     offset shell A's or B's clock by OFF
//
// Remote mode drives an externally deployed mesh (cmshell + risd): -risd
// points at the branch risd server to write through, and each -scrape
// names a cmshell -metrics-addr endpoint whose /metrics text supplies
// the latency histogram and overload counters:
//
//	cmload -risd 127.0.0.1:7001 -scrape http://127.0.0.1:9090 \
//	       -schedule const:100:30s
//
// -json FILE writes the report as one JSON object for dashboards and
// regression diffs (BENCH_LOAD.json is produced by cmbench -loadjson,
// which sweeps campaigns deterministically; cmload measures real time).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"cmtk/internal/chaos"
	"cmtk/internal/harness"
	"cmtk/internal/obs"
	"cmtk/internal/ris/server"
	"cmtk/internal/shell"
	"cmtk/internal/vclock"
	"cmtk/internal/workload"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(v string) error { *r = append(*r, v); return nil }

// report is the machine-readable outcome of one load run.
type report struct {
	Mode          string   `json:"mode"` // "self-contained" or "remote"
	Schedule      string   `json:"schedule"`
	Keys          int      `json:"keys"`
	Arrivals      int      `json:"arrivals"`
	LateArrivals  int      `json:"late_arrivals"` // fired behind plan by > 1ms
	Errors        int      `json:"errors"`
	OfferedRate   float64  `json:"offered_rate_per_sec"`
	WallSeconds   float64  `json:"wall_seconds"`
	Fires         uint64   `json:"fires"` // latency observations across shells
	P50Ms         float64  `json:"p50_ms"`
	P99Ms         float64  `json:"p99_ms"`
	P999Ms        float64  `json:"p999_ms"`
	DeadlineMs    float64  `json:"deadline_ms"`
	DeadlineMiss  int      `json:"deadline_misses"` // -1 when unknown (remote)
	Lost          int      `json:"lost"`            // values never reflected (-1 remote)
	Shed          uint64   `json:"shed"`
	BufferDropped uint64   `json:"buffer_dropped"`
	Campaign      []string `json:"campaign,omitempty"`
}

func main() {
	schedSpec := flag.String("schedule", "const:50:10s", "arrival plan: const:RATE:DUR | ramp:FROM:TO:DUR | spike:BASE:PEAK:TOTAL:AT:LEN")
	keysN := flag.Int("keys", 8, "number of employee keys updates spread over")
	seed := flag.Int64("seed", 1, "key-choice seed")
	deadline := flag.Duration("deadline", 2*time.Second, "per-update propagation deadline")
	settle := flag.Duration("settle", 2*time.Second, "drain time after the last arrival before measuring")
	queueLimit := flag.Int("queue-limit", 0, "shell post-queue cap (0: unbounded)")
	admission := flag.String("admission", "block", "policy at the queue cap: all|block|shed")
	outboxLimit := flag.Int("outbox-limit", 0, "reliable outage-buffer cap per link (0: default)")
	retry := flag.Duration("retry", 200*time.Millisecond, "reliable-link base retransmit interval")
	useTCP := flag.Bool("tcp", true, "self-contained mesh over real loopback sockets (false: in-process bus)")
	busLatency := flag.Duration("bus-latency", 10*time.Millisecond, "in-process bus link latency (with -tcp=false)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics for the in-process mesh on this address (empty: off)")
	risdAddr := flag.String("risd", "", "remote mode: branch risd relstore address to write through")
	jsonOut := flag.String("json", "", "write the report to this file as JSON")
	var campaignSpecs, scrapes repeated
	flag.Var(&campaignSpecs, "campaign", "fault to schedule (repeatable): partition:AT:DUR | lossy:P:AT:DUR | slow:P:BY:AT:DUR | skew:SHELL:OFF:AT:DUR")
	flag.Var(&scrapes, "scrape", "remote mode: cmshell metrics base URL, e.g. http://127.0.0.1:9090 (repeatable)")
	flag.Parse()

	sched, err := parseSchedule(*schedSpec)
	if err != nil {
		log.Fatalf("cmload: %v", err)
	}
	keys := workload.Keys(*keysN)
	updates := sched.Updates(keys, *seed, *deadline)
	if len(updates) == 0 {
		log.Fatal("cmload: schedule yields no arrivals")
	}

	adm := shell.AdmitAll
	switch *admission {
	case "all":
	case "block":
		adm = shell.AdmitBlock
	case "shed":
		adm = shell.AdmitShed
	default:
		log.Fatalf("cmload: unknown -admission %q (want all|block|shed)", *admission)
	}

	// The generator's own counters, next to the mesh's in one registry.
	mArrivals := obs.Default.Counter("cmtk_load_arrivals_total",
		"Open-loop updates fired by cmload.").With()
	mLate := obs.Default.Counter("cmtk_load_late_arrivals_total",
		"Arrivals fired more than 1ms behind plan (the generator itself fell behind).").With()
	mErrors := obs.Default.Counter("cmtk_load_errors_total",
		"Update writes that returned an error.").With()
	mMisses := obs.Default.Counter("cmtk_load_deadline_miss_total",
		"Updates whose propagation exceeded the deadline (or never completed).").With()

	rep := report{
		Schedule: *schedSpec, Keys: *keysN, Arrivals: len(updates),
		DeadlineMs: float64(*deadline) / float64(time.Millisecond),
		OfferedRate: float64(len(updates)) / sched.Total().Seconds(),
		DeadlineMiss: -1, Lost: -1,
	}

	var write func(workload.TimedUpdate) error
	var finish func(*report)

	if *risdAddr != "" {
		if len(campaignSpecs) > 0 {
			log.Fatal("cmload: -campaign needs the in-process mesh (no fault injection into remote processes)")
		}
		rep.Mode = "remote"
		rc, err := server.DialRel(*risdAddr)
		if err != nil {
			log.Fatalf("cmload: dialing risd: %v", err)
		}
		defer rc.Close()
		var mu sync.Mutex // one wire client; serialize statements
		write = func(u workload.TimedUpdate) error {
			mu.Lock()
			defer mu.Unlock()
			res, err := rc.Exec(fmt.Sprintf("UPDATE employees SET salary = %d WHERE empid = '%s'", u.Value, u.Key))
			if err == nil && res.Affected == 0 {
				_, err = rc.Exec(fmt.Sprintf("INSERT INTO employees VALUES ('%s', %d)", u.Key, u.Value))
			}
			return err
		}
		finish = func(r *report) {
			var text strings.Builder
			for _, base := range scrapes {
				body, err := scrapeMetrics(base)
				if err != nil {
					log.Printf("cmload: scraping %s: %v", base, err)
					continue
				}
				text.WriteString(body)
				text.WriteByte('\n')
			}
			fillFromExposition(r, text.String())
		}
	} else {
		rep.Mode = "self-contained"
		if *metricsAddr != "" {
			srv, bound, err := obs.Serve(*metricsAddr, nil, nil)
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			fmt.Printf("cmload: observability on http://%s\n", bound)
		}
		mesh, err := harness.NewLoadMesh(harness.LoadMeshOptions{
			TCP: *useTCP, BusLatency: *busLatency, Seed: *seed,
			RetryInterval: *retry, OutboxLimit: *outboxLimit,
			QueueLimit: *queueLimit, Admission: adm, Keys: keys,
		})
		if err != nil {
			log.Fatalf("cmload: assembling mesh: %v", err)
		}
		defer mesh.Stop()
		var runner *chaos.Runner
		if len(campaignSpecs) > 0 {
			campaign, err := parseCampaign(campaignSpecs, mesh)
			if err != nil {
				log.Fatalf("cmload: %v", err)
			}
			runner = chaos.Start(vclock.Real{}, campaign)
			defer runner.Stop()
		}
		write = func(u workload.TimedUpdate) error { return mesh.Write(u.Key, u.Value) }
		finish = func(r *report) {
			var text strings.Builder
			mesh.Reg.WriteText(&text)
			fillFromExposition(r, text.String())
			delays, lost := mesh.PropagationDelays(0)
			misses := lost
			for _, d := range delays {
				if d > *deadline {
					misses++
				}
			}
			r.DeadlineMiss, r.Lost = misses, lost
			mMisses.Add(uint64(misses))
			if runner != nil {
				for _, e := range runner.Timeline() {
					r.Campaign = append(r.Campaign, e.String())
				}
			}
		}
	}

	fmt.Printf("cmload: %s mode, %d arrivals over %s (%.1f/s offered), deadline %s\n",
		rep.Mode, len(updates), sched.Total(), rep.OfferedRate, *deadline)

	// The open loop: fire each update at its planned instant.  A write
	// runs in its own goroutine so a slow or blocked mesh never delays
	// the arrival process — that is the whole point of open-loop load.
	start := time.Now()
	var wg sync.WaitGroup
	var errMu sync.Mutex
	for _, u := range updates {
		if d := time.Until(start.Add(u.At)); d > 0 {
			time.Sleep(d)
		} else if -d > time.Millisecond {
			mLate.Inc()
			rep.LateArrivals++
		}
		mArrivals.Inc()
		wg.Add(1)
		go func(u workload.TimedUpdate) {
			defer wg.Done()
			if err := write(u); err != nil {
				mErrors.Inc()
				errMu.Lock()
				rep.Errors++
				errMu.Unlock()
			}
		}(u)
	}
	wg.Wait()
	time.Sleep(*settle)
	rep.WallSeconds = time.Since(start).Seconds()
	finish(&rep)

	fmt.Printf("cmload: %d fires, latency p50=%.3fms p99=%.3fms p999=%.3fms\n",
		rep.Fires, rep.P50Ms, rep.P99Ms, rep.P999Ms)
	if rep.DeadlineMiss >= 0 {
		fmt.Printf("cmload: deadline misses %d/%d (lost %d), shed %d, buffer drops %d\n",
			rep.DeadlineMiss, rep.Arrivals, rep.Lost, rep.Shed, rep.BufferDropped)
	} else {
		fmt.Printf("cmload: shed %d, buffer drops %d (deadline accounting needs the in-process trace)\n",
			rep.Shed, rep.BufferDropped)
	}
	for _, line := range rep.Campaign {
		fmt.Printf("cmload: campaign %s\n", line)
	}
	if rep.LateArrivals > 0 {
		fmt.Printf("cmload: generator fell behind plan on %d arrival(s)\n", rep.LateArrivals)
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cmload: report written to %s\n", *jsonOut)
	}
}

// fillFromExposition extracts the latency quantiles and overload counters
// from Prometheus text (the registry's own or a remote scrape).
func fillFromExposition(r *report, text string) {
	bounds, cum, count, _, ok := obs.ParseHistogram(text, "cmtk_shell_fire_latency_seconds")
	if ok && count > 0 {
		r.Fires = count
		r.P50Ms = obs.QuantileFromBuckets(bounds, cum, count, 0.50) * 1000
		r.P99Ms = obs.QuantileFromBuckets(bounds, cum, count, 0.99) * 1000
		r.P999Ms = obs.QuantileFromBuckets(bounds, cum, count, 0.999) * 1000
	}
	r.Shed = sumCounter(text, "cmtk_shell_shed_total")
	r.BufferDropped = sumCounter(text, "cmtk_transport_buffer_dropped_total")
}

// sumCounter totals a counter family across every label set in
// exposition text.
func sumCounter(text, name string) uint64 {
	var total uint64
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != '{' && rest[0] != ' ' {
			continue // longer metric name sharing the prefix
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[sp+1:], 64); err == nil {
			total += uint64(v)
		}
	}
	return total
}

// scrapeMetrics fetches base + "/metrics".
func scrapeMetrics(base string) (string, error) {
	resp, err := http.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// parseSchedule turns a -schedule spec into a workload.Schedule.
func parseSchedule(spec string) (workload.Schedule, error) {
	parts := strings.Split(spec, ":")
	bad := func() (workload.Schedule, error) {
		return workload.Schedule{}, fmt.Errorf("bad -schedule %q (want const:RATE:DUR | ramp:FROM:TO:DUR | spike:BASE:PEAK:TOTAL:AT:LEN)", spec)
	}
	rate := func(s string) (float64, bool) {
		v, err := strconv.ParseFloat(s, 64)
		return v, err == nil && v >= 0
	}
	dur := func(s string) (time.Duration, bool) {
		d, err := time.ParseDuration(s)
		return d, err == nil && d > 0
	}
	switch parts[0] {
	case "const":
		if len(parts) != 3 {
			return bad()
		}
		r, ok1 := rate(parts[1])
		d, ok2 := dur(parts[2])
		if !ok1 || !ok2 {
			return bad()
		}
		return workload.Constant(r, d), nil
	case "ramp":
		if len(parts) != 4 {
			return bad()
		}
		from, ok1 := rate(parts[1])
		to, ok2 := rate(parts[2])
		d, ok3 := dur(parts[3])
		if !ok1 || !ok2 || !ok3 {
			return bad()
		}
		return workload.Ramp(from, to, d), nil
	case "spike":
		if len(parts) != 6 {
			return bad()
		}
		base, ok1 := rate(parts[1])
		peak, ok2 := rate(parts[2])
		total, ok3 := dur(parts[3])
		at, err := time.ParseDuration(parts[4])
		ln, ok5 := dur(parts[5])
		if !ok1 || !ok2 || !ok3 || err != nil || at < 0 || !ok5 {
			return bad()
		}
		return workload.Spike(base, peak, total, at, ln), nil
	}
	return bad()
}

// parseCampaign binds -campaign specs to the mesh's injection points.
func parseCampaign(specs []string, mesh *harness.LoadMesh) (chaos.Campaign, error) {
	c := chaos.Campaign{Name: "cmload"}
	for _, spec := range specs {
		parts := strings.Split(spec, ":")
		bad := func() (chaos.Campaign, error) {
			return chaos.Campaign{}, fmt.Errorf("bad -campaign %q", spec)
		}
		durs := func(ss ...string) ([]time.Duration, bool) {
			out := make([]time.Duration, len(ss))
			for i, s := range ss {
				d, err := time.ParseDuration(s)
				if err != nil || d < 0 {
					return nil, false
				}
				out[i] = d
			}
			return out, true
		}
		switch parts[0] {
		case "partition":
			if len(parts) != 3 {
				return bad()
			}
			ds, ok := durs(parts[1], parts[2])
			if !ok {
				return bad()
			}
			c.Faults = append(c.Faults, chaos.Partition(mesh.Flaky, "shell-A", "shell-B", ds[0], ds[1]))
		case "lossy":
			if len(parts) != 4 {
				return bad()
			}
			p, err := strconv.ParseFloat(parts[1], 64)
			ds, ok := durs(parts[2], parts[3])
			if err != nil || p < 0 || p > 1 || !ok {
				return bad()
			}
			c.Faults = append(c.Faults, chaos.Lossy(mesh.Flaky, p, ds[0], ds[1]))
		case "slow":
			if len(parts) != 5 {
				return bad()
			}
			p, err := strconv.ParseFloat(parts[1], 64)
			ds, ok := durs(parts[2], parts[3], parts[4])
			if err != nil || p < 0 || p > 1 || !ok {
				return bad()
			}
			c.Faults = append(c.Faults, chaos.Slow(mesh.Flaky, p, ds[0], ds[1], ds[2]))
		case "skew":
			if len(parts) != 5 {
				return bad()
			}
			clk, ok := mesh.Clocks["shell-"+parts[1]]
			if !ok {
				return bad()
			}
			off, err := time.ParseDuration(parts[2])
			ds, ok2 := durs(parts[3], parts[4])
			if err != nil || !ok2 {
				return bad()
			}
			c.Faults = append(c.Faults, chaos.Skew(clk, off, ds[0], ds[1]))
		default:
			return bad()
		}
	}
	return c, nil
}
