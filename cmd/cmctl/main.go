// Command cmctl inspects toolkit configuration: it validates Strategy
// Specifications and CM-RIDs, shows the capability set each interface
// declaration implies, and — given a constraint — lists the applicable
// strategies with their guarantees, reproducing the Section 4.1
// initialization dialogue ("The CM then suggests strategies that are
// applicable to these interfaces, along with the associated guarantees").
//
// Usage:
//
//	cmctl check -spec strategy.spec
//	cmctl check -rid b.rid
//	cmctl suggest -x salary1 -xrid a.rid -y salary2 -yrid b.rid [-arity 1]
//	cmctl state -state-dir /var/lib/cmshell-a
//
// The state subcommand reads a cmshell durable state directory without
// modifying it (safe while the shell is running): per-journal segment
// counts, WAL sizes, checkpoint ages, and any damage recovery would
// truncate at, plus the decoded reliability journal — per-peer outbox
// depth (the messages a restart would replay) and receive cursors.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"cmtk/internal/durable"
	"cmtk/internal/guarantee"
	"cmtk/internal/rid"
	"cmtk/internal/rule"
	"cmtk/internal/strategy"
	"cmtk/internal/translator"
	"cmtk/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "check":
		check(os.Args[2:])
	case "suggest":
		suggest(os.Args[2:])
	case "state":
		state(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cmctl check [-spec FILE] [-rid FILE]")
	fmt.Fprintln(os.Stderr, "       cmctl suggest -x BASE -xrid FILE -y BASE -yrid FILE [-arity N]")
	fmt.Fprintln(os.Stderr, "       cmctl state -state-dir DIR")
	os.Exit(2)
}

func check(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	specPath := fs.String("spec", "", "strategy specification to validate")
	ridPath := fs.String("rid", "", "CM-RID to validate")
	fs.Parse(args)
	if *specPath == "" && *ridPath == "" {
		usage()
	}
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := rule.ParseSpec(f)
		f.Close()
		if err != nil {
			log.Fatalf("cmctl: %s: %v", *specPath, err)
		}
		fmt.Printf("%s: valid strategy specification\n", *specPath)
		fmt.Printf("  sites: %v\n", spec.Sites)
		fmt.Printf("  items: %d database, %d CM-private\n", len(spec.Items), len(spec.Private))
		fmt.Printf("  rules:\n")
		for _, r := range spec.Rules {
			fmt.Printf("    %s\n", r)
		}
		for _, src := range spec.Guarantees {
			g, err := guarantee.Parse(src)
			if err != nil {
				log.Fatalf("cmctl: %s: guarantee %q: %v", *specPath, src, err)
			}
			fmt.Printf("  guarantee %s:  %s\n", g.Name(), g.Formula())
		}
	}
	if *ridPath != "" {
		cfg, err := rid.ParseFile(*ridPath)
		if err != nil {
			log.Fatalf("cmctl: %s: %v", *ridPath, err)
		}
		fmt.Printf("%s: valid CM-RID (kind %s, site %s)\n", *ridPath, cfg.Kind, cfg.Site)
		for base := range cfg.Items {
			caps := translator.CapsFromStatements(cfg.Statements, base)
			fmt.Printf("  item %s: capabilities %s\n", base, caps)
		}
		for _, st := range cfg.Statements {
			fmt.Printf("  interface %s\n", st)
		}
	}
}

func state(args []string) {
	fs := flag.NewFlagSet("state", flag.ExitOnError)
	dir := fs.String("state-dir", "", "durable state directory to inspect")
	fs.Parse(args)
	if *dir == "" {
		usage()
	}
	infos, clean, err := durable.Inspect(*dir)
	if err != nil {
		log.Fatalf("cmctl: %v", err)
	}
	shutdown := "dirty (no clean-shutdown marker: next start replays journals)"
	if clean {
		shutdown = "clean (marker present: next start is warm)"
	}
	fmt.Printf("%s: %d journal(s), last shutdown %s\n", *dir, len(infos), shutdown)
	for _, info := range infos {
		fmt.Printf("\njournal %s: %d segment(s), %d bytes WAL, %d record(s) after checkpoint\n",
			info.Name, info.Segments, info.WALBytes, info.Records)
		if info.HasCheckpoint {
			fmt.Printf("  checkpoint: %d bytes, written %s\n",
				info.CheckpointLen, info.CheckpointAt.Format("2006-01-02 15:04:05"))
		} else {
			fmt.Printf("  checkpoint: none (full replay from the log)\n")
		}
		for _, d := range info.Damage {
			fmt.Printf("  damage: %s in %s at offset %d (%s) — recovery stops here\n",
				d.Kind, d.Segment, d.Offset, d.Detail)
		}
		if !strings.HasPrefix(info.Name, "rel-") {
			continue
		}
		// Reliability journals decode further: what a restart would replay.
		rec, err := durable.ReadLog(*dir, info.Name)
		if err != nil {
			fmt.Printf("  (undecodable: %v)\n", err)
			continue
		}
		sum, err := transport.SummarizeJournal(rec)
		if err != nil {
			fmt.Printf("  (undecodable: %v)\n", err)
			continue
		}
		fmt.Printf("  sender epoch: %d\n", sum.Epoch)
		for _, peer := range sortedKeysOut(sum.Out) {
			o := sum.Out[peer]
			fmt.Printf("  -> %s: outbox depth %d (%d fire(s)), next seq %d\n",
				peer, o.Pending, o.Fires, o.NextSeq)
		}
		for _, peer := range sortedKeysIn(sum.In) {
			in := sum.In[peer]
			fmt.Printf("  <- %s: dedup cursor at seq %d (sender epoch %d)\n",
				peer, in.Next, in.Epoch)
		}
	}
}

func sortedKeysOut(m map[string]transport.OutSummary) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysIn(m map[string]transport.InSummary) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func suggest(args []string) {
	fs := flag.NewFlagSet("suggest", flag.ExitOnError)
	x := fs.String("x", "", "primary item base")
	y := fs.String("y", "", "replica item base")
	xridPath := fs.String("xrid", "", "CM-RID binding the primary")
	yridPath := fs.String("yrid", "", "CM-RID binding the replica")
	arity := fs.Int("arity", 1, "key arity of the families")
	fs.Parse(args)
	if *x == "" || *y == "" || *xridPath == "" || *yridPath == "" {
		usage()
	}
	xcfg, err := rid.ParseFile(*xridPath)
	if err != nil {
		log.Fatal(err)
	}
	ycfg, err := rid.ParseFile(*yridPath)
	if err != nil {
		log.Fatal(err)
	}
	xCaps := translator.CapsFromStatements(xcfg.Statements, *x)
	yCaps := translator.CapsFromStatements(ycfg.Statements, *y)
	fmt.Printf("constraint: %s(n) = %s(n) for all n\n", *x, *y)
	fmt.Printf("  %s at site %s offers: %s\n", *x, xcfg.Site, xCaps)
	fmt.Printf("  %s at site %s offers: %s\n", *y, ycfg.Site, yCaps)
	choices := strategy.SuggestCopy(
		strategy.Copy{X: *x, Y: *y, Arity: *arity},
		xCaps, yCaps, xcfg.Site, ycfg.Site, strategy.Options{},
	)
	if len(choices) == 0 {
		fmt.Println("no applicable strategy: the declared interfaces support neither propagation, polling nor monitoring")
		os.Exit(1)
	}
	for i, ch := range choices {
		fmt.Printf("\nstrategy %d: %s — %s\n", i+1, ch.Name, ch.Description)
		for _, r := range ch.Rules {
			fmt.Printf("  rule %s\n", r)
		}
		for base, site := range ch.Private {
			fmt.Printf("  private %s @ %s\n", base, site)
		}
		fmt.Println("  guarantees:")
		for _, g := range ch.Guarantees {
			fmt.Printf("    %s:  %s\n", g.Name(), g.Formula())
		}
	}
}
