// Command cmctl inspects toolkit configuration: it validates Strategy
// Specifications and CM-RIDs, shows the capability set each interface
// declaration implies, and — given a constraint — lists the applicable
// strategies with their guarantees, reproducing the Section 4.1
// initialization dialogue ("The CM then suggests strategies that are
// applicable to these interfaces, along with the associated guarantees").
//
// Usage:
//
//	cmctl check -spec strategy.spec
//	cmctl check -rid b.rid
//	cmctl suggest -x salary1 -xrid a.rid -y salary2 -yrid b.rid [-arity 1]
//	cmctl state -state-dir /var/lib/cmshell-a
//	cmctl ring -route table.json [-plan a,b,c,d]
//	cmctl ring -spec strategy.spec -members a,b,c [-write table.json]
//	cmctl ring -state-dir /var/lib/cmshell-a
//	cmctl ckpt -state-dir /var/lib/cmshell-a [-log trace-a] [-verify]
//
// The ckpt subcommand decodes the sectioned trace checkpoints a
// retention-enabled shell persists, checking every section's CRC and
// printing granular verdicts; -verify turns the outcome into an exit
// code for scripted preflight before a cold start.
//
// The state subcommand reads a cmshell durable state directory without
// modifying it (safe while the shell is running): per-journal segment
// counts, WAL sizes, checkpoint ages, and any damage recovery would
// truncate at, plus the decoded reliability journal — per-peer outbox
// depth (the messages a restart would replay) and receive cursors.
//
// The ring subcommand shows a fleet route table (DESIGN.md §10): epoch,
// membership, per-shell base counts against the bounded-load cap, the
// placement checksum, and the base→owner map.  The table comes from a
// route file (-route), from computing a fresh epoch-1 assignment for a
// spec and membership (-spec -members, the same pure function every
// fleet member evaluates), or from the fleet-table log of a durable
// state directory (-state-dir, read-only).  -plan diffs the loaded
// table against a proposed membership and prints the moves a rebalance
// to it would make; -write dumps the table as a route file for cmshell.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strings"

	"cmtk/internal/durable"
	"cmtk/internal/fleet"
	"cmtk/internal/guarantee"
	"cmtk/internal/rid"
	"cmtk/internal/rule"
	"cmtk/internal/strategy"
	"cmtk/internal/trace"
	"cmtk/internal/translator"
	"cmtk/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "check":
		check(os.Args[2:])
	case "suggest":
		suggest(os.Args[2:])
	case "state":
		state(os.Args[2:])
	case "ring":
		ringCmd(os.Args[2:])
	case "ckpt":
		ckptCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cmctl check [-spec FILE] [-rid FILE]")
	fmt.Fprintln(os.Stderr, "       cmctl suggest -x BASE -xrid FILE -y BASE -yrid FILE [-arity N]")
	fmt.Fprintln(os.Stderr, "       cmctl state -state-dir DIR")
	fmt.Fprintln(os.Stderr, "       cmctl ring {-route FILE | -spec FILE -members A,B,C | -state-dir DIR} [-rid FILE] [-plan A,B,C,D] [-write FILE]")
	fmt.Fprintln(os.Stderr, "       cmctl ckpt -state-dir DIR [-log NAME] [-verify]")
	os.Exit(2)
}

func check(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	specPath := fs.String("spec", "", "strategy specification to validate")
	ridPath := fs.String("rid", "", "CM-RID to validate")
	fs.Parse(args)
	if *specPath == "" && *ridPath == "" {
		usage()
	}
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := rule.ParseSpec(f)
		f.Close()
		if err != nil {
			log.Fatalf("cmctl: %s: %v", *specPath, err)
		}
		fmt.Printf("%s: valid strategy specification\n", *specPath)
		fmt.Printf("  sites: %v\n", spec.Sites)
		fmt.Printf("  items: %d database, %d CM-private\n", len(spec.Items), len(spec.Private))
		fmt.Printf("  rules:\n")
		for _, r := range spec.Rules {
			fmt.Printf("    %s\n", r)
		}
		for _, src := range spec.Guarantees {
			g, err := guarantee.Parse(src)
			if err != nil {
				log.Fatalf("cmctl: %s: guarantee %q: %v", *specPath, src, err)
			}
			fmt.Printf("  guarantee %s:  %s\n", g.Name(), g.Formula())
		}
	}
	if *ridPath != "" {
		cfg, err := rid.ParseFile(*ridPath)
		if err != nil {
			log.Fatalf("cmctl: %s: %v", *ridPath, err)
		}
		fmt.Printf("%s: valid CM-RID (kind %s, site %s)\n", *ridPath, cfg.Kind, cfg.Site)
		for base := range cfg.Items {
			caps := translator.CapsFromStatements(cfg.Statements, base)
			fmt.Printf("  item %s: capabilities %s\n", base, caps)
		}
		for _, st := range cfg.Statements {
			fmt.Printf("  interface %s\n", st)
		}
	}
}

func state(args []string) {
	fs := flag.NewFlagSet("state", flag.ExitOnError)
	dir := fs.String("state-dir", "", "durable state directory to inspect")
	fs.Parse(args)
	if *dir == "" {
		usage()
	}
	infos, clean, err := durable.Inspect(*dir)
	if err != nil {
		log.Fatalf("cmctl: %v", err)
	}
	shutdown := "dirty (no clean-shutdown marker: next start replays journals)"
	if clean {
		shutdown = "clean (marker present: next start is warm)"
	}
	fmt.Printf("%s: %d journal(s), last shutdown %s\n", *dir, len(infos), shutdown)
	for _, info := range infos {
		fmt.Printf("\njournal %s: %d segment(s), %d bytes WAL, %d record(s) after checkpoint\n",
			info.Name, info.Segments, info.WALBytes, info.Records)
		if info.HasCheckpoint {
			fmt.Printf("  checkpoint: %d bytes, written %s\n",
				info.CheckpointLen, info.CheckpointAt.Format("2006-01-02 15:04:05"))
		} else {
			fmt.Printf("  checkpoint: none (full replay from the log)\n")
		}
		for _, d := range info.Damage {
			fmt.Printf("  damage: %s in %s at offset %d (%s) — recovery stops here\n",
				d.Kind, d.Segment, d.Offset, d.Detail)
		}
		if !strings.HasPrefix(info.Name, "rel-") {
			continue
		}
		// Reliability journals decode further: what a restart would replay.
		rec, err := durable.ReadLog(*dir, info.Name)
		if err != nil {
			fmt.Printf("  (undecodable: %v)\n", err)
			continue
		}
		sum, err := transport.SummarizeJournal(rec)
		if err != nil {
			fmt.Printf("  (undecodable: %v)\n", err)
			continue
		}
		fmt.Printf("  sender epoch: %d\n", sum.Epoch)
		for _, peer := range sortedKeysOut(sum.Out) {
			o := sum.Out[peer]
			fmt.Printf("  -> %s: outbox depth %d (%d fire(s)), next seq %d\n",
				peer, o.Pending, o.Fires, o.NextSeq)
		}
		for _, peer := range sortedKeysIn(sum.In) {
			in := sum.In[peer]
			fmt.Printf("  <- %s: dedup cursor at seq %d (sender epoch %d)\n",
				peer, in.Next, in.Epoch)
		}
	}
}

// ckptCmd implements `cmctl ckpt`: inspect and verify the sectioned
// trace checkpoints a retention-enabled shell persists (read-only, safe
// while the shell runs).  Every section's CRC is checked and its
// verdict printed; with -verify the exit code reflects the outcome, so
// an operator can validate a checkpoint before trusting a cold start to
// it.
func ckptCmd(args []string) {
	fs := flag.NewFlagSet("ckpt", flag.ExitOnError)
	dir := fs.String("state-dir", "", "durable state directory to inspect")
	logName := fs.String("log", "", "checkpoint log to decode (default: every trace-* log)")
	verify := fs.Bool("verify", false, "exit nonzero unless every snapshot verifies")
	fs.Parse(args)
	if *dir == "" {
		usage()
	}
	var names []string
	if *logName != "" {
		names = []string{*logName}
	} else {
		infos, _, err := durable.Inspect(*dir)
		if err != nil {
			log.Fatalf("cmctl: %v", err)
		}
		for _, info := range infos {
			if strings.HasPrefix(info.Name, "trace-") {
				names = append(names, info.Name)
			}
		}
	}
	if len(names) == 0 {
		fmt.Printf("%s: no trace checkpoint logs\n", *dir)
		return
	}
	ok := true
	for _, name := range names {
		rec, err := durable.ReadLog(*dir, name)
		if err != nil {
			log.Fatalf("cmctl: %s: %v", name, err)
		}
		fmt.Printf("checkpoint %s: ", name)
		if rec.Snapshot == nil {
			fmt.Printf("no snapshot")
			if len(rec.Damage) > 0 {
				fmt.Printf(" (%s: %s)", rec.Damage[0].Kind, rec.Damage[0].Detail)
				ok = false
			}
			fmt.Println()
			continue
		}
		secs, rep := durable.DecodeSections(rec.Snapshot)
		verdict := "verified"
		if err := rep.Err(); err != nil {
			verdict = err.Error()
			ok = false
		}
		fmt.Printf("%d bytes, container v%d, %s\n", len(rec.Snapshot), rep.Version, verdict)
		for _, st := range rep.Sections {
			v := "ok"
			if st.Err != "" {
				v = "REJECTED: " + st.Err
			}
			fmt.Printf("  section %-10s %8d bytes  %s\n", st.Name, st.Bytes, v)
		}
		if meta, found := secs["meta"]; found {
			var cs trace.CheckpointState
			items := map[string]string{}
			json.Unmarshal(secs["base"], &items)
			if err := json.Unmarshal(meta, &cs); err == nil {
				fmt.Printf("  next seq %d, %d event(s) folded (%d bytes), base time %s, %d base item(s)\n",
					cs.NextSeq, cs.PrunedEvents, cs.PrunedBytes,
					cs.BaseTime.Format("2006-01-02 15:04:05"), len(items))
			}
		}
	}
	if *verify && !ok {
		os.Exit(1)
	}
}

// ringCmd implements `cmctl ring`: load (or compute) a fleet route
// table, print its layout, and optionally plan a rebalance or dump a
// route file.
func ringCmd(args []string) {
	fs := flag.NewFlagSet("ring", flag.ExitOnError)
	routePath := fs.String("route", "", "route-table JSON file to inspect")
	specPath := fs.String("spec", "", "strategy specification to assign (with -members)")
	members := fs.String("members", "", "comma-separated shell ids for a fresh epoch-1 assignment")
	stateDir := fs.String("state-dir", "", "durable state directory holding a persisted fleet-table log")
	plan := fs.String("plan", "", "comma-separated proposed membership: print the moves a rebalance would make")
	writePath := fs.String("write", "", "dump the table to this route file")
	ridPath := fs.String("rid", "", "CM-RID file: show which shell each of its notify-capable bases routes to")
	fs.Parse(args)

	splitIDs := func(s string) []string {
		var out []string
		for _, id := range strings.Split(s, ",") {
			if id = strings.TrimSpace(id); id != "" {
				out = append(out, id)
			}
		}
		return out
	}

	// A spec supplies the rule-graph affinity map: mandatory when it is
	// the table source, and honored by -plan so a planned rebalance
	// keeps affinity groups together exactly as the fleet would.
	var affinity map[string]string
	var specBases []string
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := rule.ParseSpec(f)
		f.Close()
		if err != nil {
			log.Fatalf("cmctl: %s: %v", *specPath, err)
		}
		affinity = fleet.Affinity(spec)
		specBases = fleet.SpecBases(spec)
	}

	var tab fleet.Table
	var source string
	switch {
	case *routePath != "":
		var err error
		if tab, err = fleet.ReadFile(*routePath); err != nil {
			log.Fatalf("cmctl: %v", err)
		}
		source = *routePath
	case *specPath != "":
		ids := splitIDs(*members)
		if len(ids) == 0 {
			log.Fatal("cmctl: ring -spec needs -members")
		}
		var err error
		tab, err = fleet.Assign(1, ids, specBases, fleet.Params{Affinity: affinity})
		if err != nil {
			log.Fatalf("cmctl: %v", err)
		}
		source = fmt.Sprintf("%s (fresh assignment)", *specPath)
	case *stateDir != "":
		rec, err := durable.ReadLog(*stateDir, fleet.TableLogName)
		if err != nil {
			log.Fatalf("cmctl: %v", err)
		}
		if len(rec.Snapshot) == 0 {
			log.Fatalf("cmctl: %s: no %s checkpoint (not a fleet member's state dir?)", *stateDir, fleet.TableLogName)
		}
		if err := json.Unmarshal(rec.Snapshot, &tab); err != nil {
			log.Fatalf("cmctl: %s: decoding %s: %v", *stateDir, fleet.TableLogName, err)
		}
		source = fmt.Sprintf("%s (%s log)", *stateDir, fleet.TableLogName)
	default:
		usage()
	}

	bases := tab.Bases()
	counts := tab.Counts()
	bound := "n/a"
	if len(tab.Members) > 0 && tab.LoadFactor > 0 {
		bound = fmt.Sprint(int(math.Ceil(float64(len(bases)) / float64(len(tab.Members)) * tab.LoadFactor)))
	}
	fmt.Printf("route table from %s\n", source)
	fmt.Printf("  epoch %d, %d member(s), %d base(s), %d vnode(s)/member, load cap %s, checksum %016x\n",
		tab.Epoch, len(tab.Members), len(bases), tab.VNodes, bound, tab.Checksum())
	for _, m := range tab.Members {
		fmt.Printf("  shell %-12s owns %d base(s)\n", m, counts[m])
	}
	for _, b := range bases {
		fmt.Printf("    %s -> %s\n", b, tab.Owners[b])
	}

	if *ridPath != "" {
		cfg, err := rid.ParseFile(*ridPath)
		if err != nil {
			log.Fatalf("cmctl: %s: %v", *ridPath, err)
		}
		// The translator's view of the table: the bases this source can
		// push notifications for, and the shell each callback is routed
		// (or forwarded) to under the current epoch.
		fmt.Printf("\ntranslator %s (site %s) notify routing:\n", *ridPath, cfg.Site)
		for _, base := range translator.NotifyBases(cfg.Statements) {
			owner, ok := tab.Owner(base)
			if !ok {
				owner = "(not in table: static site routing)"
			}
			fmt.Printf("  N(%s) -> %s\n", base, owner)
		}
	}

	if *plan != "" {
		ids := splitIDs(*plan)
		next, err := fleet.Assign(tab.Epoch+1, ids, bases,
			fleet.Params{VNodes: tab.VNodes, LoadFactor: tab.LoadFactor, Affinity: affinity})
		if err != nil {
			log.Fatalf("cmctl: %v", err)
		}
		moves := fleet.Moves(tab, next)
		fmt.Printf("\nrebalance plan to [%s] (epoch %d): %d of %d base(s) move\n",
			strings.Join(ids, " "), next.Epoch, len(moves), len(bases))
		for _, mv := range moves {
			fmt.Printf("  %s: %s -> %s\n", mv.Base, mv.From, mv.To)
		}
	}
	if *writePath != "" {
		if err := tab.WriteFile(*writePath); err != nil {
			log.Fatalf("cmctl: %v", err)
		}
		fmt.Printf("wrote route table to %s\n", *writePath)
	}
}

func sortedKeysOut(m map[string]transport.OutSummary) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysIn(m map[string]transport.InSummary) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func suggest(args []string) {
	fs := flag.NewFlagSet("suggest", flag.ExitOnError)
	x := fs.String("x", "", "primary item base")
	y := fs.String("y", "", "replica item base")
	xridPath := fs.String("xrid", "", "CM-RID binding the primary")
	yridPath := fs.String("yrid", "", "CM-RID binding the replica")
	arity := fs.Int("arity", 1, "key arity of the families")
	fs.Parse(args)
	if *x == "" || *y == "" || *xridPath == "" || *yridPath == "" {
		usage()
	}
	xcfg, err := rid.ParseFile(*xridPath)
	if err != nil {
		log.Fatal(err)
	}
	ycfg, err := rid.ParseFile(*yridPath)
	if err != nil {
		log.Fatal(err)
	}
	xCaps := translator.CapsFromStatements(xcfg.Statements, *x)
	yCaps := translator.CapsFromStatements(ycfg.Statements, *y)
	fmt.Printf("constraint: %s(n) = %s(n) for all n\n", *x, *y)
	fmt.Printf("  %s at site %s offers: %s\n", *x, xcfg.Site, xCaps)
	fmt.Printf("  %s at site %s offers: %s\n", *y, ycfg.Site, yCaps)
	choices := strategy.SuggestCopy(
		strategy.Copy{X: *x, Y: *y, Arity: *arity},
		xCaps, yCaps, xcfg.Site, ycfg.Site, strategy.Options{},
	)
	if len(choices) == 0 {
		fmt.Println("no applicable strategy: the declared interfaces support neither propagation, polling nor monitoring")
		os.Exit(1)
	}
	for i, ch := range choices {
		fmt.Printf("\nstrategy %d: %s — %s\n", i+1, ch.Name, ch.Description)
		for _, r := range ch.Rules {
			fmt.Printf("  rule %s\n", r)
		}
		for base, site := range ch.Private {
			fmt.Printf("  private %s @ %s\n", base, site)
		}
		fmt.Println("  guarantees:")
		for _, g := range ch.Guarantees {
			fmt.Printf("    %s:  %s\n", g.Name(), g.Formula())
		}
	}
}
