// Documentation checks: the operator-facing docs must not drift from
// the code.  Backticked file paths must exist, documented command flags
// must be defined by the named binary, and every metric family a live
// process exposes must be catalogued in OBSERVABILITY.md.
package cmtk_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cmtk/internal/analysis"
	"cmtk/internal/analysis/metricname"
	"cmtk/internal/data"
	"cmtk/internal/durable"
	"cmtk/internal/fleet"
	"cmtk/internal/harness"
	"cmtk/internal/obs"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/ris/server"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/vclock"
)

// operator-facing docs whose references are checked
var checkedDocs = []string{"README.md", "OBSERVABILITY.md", "DESIGN.md", "EXPERIMENTS.md", "docs/ARCHITECTURE.md"}

var backtickRe = regexp.MustCompile("`([^`\n]+)`")

// pathLike matches backticked tokens that claim to be repo files or
// directories: a repo-relative path with a slash, or a root-level
// markdown/config file.
var pathLike = regexp.MustCompile(`^(?:(?:cmd|internal|examples|docs)(?:/[\w.-]+)+|[A-Z][A-Z_]*[\w-]*\.md)$`)

// TestDocsReferenceExistingFiles fails when a doc backticks a repo path
// that does not exist.
func TestDocsReferenceExistingFiles(t *testing.T) {
	for _, doc := range checkedDocs {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, m := range backtickRe.FindAllStringSubmatch(string(body), -1) {
			tok := m[1]
			if !pathLike.MatchString(tok) {
				continue
			}
			if _, err := os.Stat(tok); err != nil {
				t.Errorf("%s references `%s`, which does not exist", doc, tok)
			}
		}
	}
}

// flagDefRe extracts flag names registered in a main.go:
// flag.String("name", ...), flag.Bool(...), flag.Var(&x, "name", ...),
// and the same registrations on a subcommand's `fs` flag set.
var flagDefRe = regexp.MustCompile(`(?:flag|fs)\.\w+\((?:&\w+, )?"([\w-]+)"`)

// cmdRe matches a backticked invocation of one of our binaries.
var cmdRe = regexp.MustCompile("`((?:cmshell|risd|cmbench|cmctl|cmload)\\s+[^`\n]*)`")

// flagTokRe pulls -flag tokens out of a documented command line.
var flagTokRe = regexp.MustCompile(`(^|\s)-([\w-]+)`)

// TestDocsReferenceDefinedFlags fails when a doc shows a binary
// invocation using a flag the binary does not define.
func TestDocsReferenceDefinedFlags(t *testing.T) {
	defined := map[string]map[string]bool{}
	for _, bin := range []string{"cmshell", "risd", "cmbench", "cmctl", "cmload"} {
		src, err := os.ReadFile(filepath.Join("cmd", bin, "main.go"))
		if err != nil {
			t.Fatalf("cmd/%s: %v", bin, err)
		}
		flags := map[string]bool{}
		for _, m := range flagDefRe.FindAllStringSubmatch(string(src), -1) {
			flags[m[1]] = true
		}
		defined[bin] = flags
	}
	for _, doc := range checkedDocs {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, m := range cmdRe.FindAllStringSubmatch(string(body), -1) {
			line := m[1]
			bin := strings.Fields(line)[0]
			for _, fm := range flagTokRe.FindAllStringSubmatch(line, -1) {
				name := fm[2]
				if !defined[bin][name] {
					t.Errorf("%s documents `%s`, but cmd/%s defines no -%s flag", doc, line, bin, name)
				}
			}
		}
	}
}

// TestObservabilityCataloguesEveryMetric exercises every instrumented
// layer against the default registry — harness experiments cover shells,
// translators, the reliable transport, and the fault injector; a live
// RIS server covers the wire dialects — then asserts each family in the
// scrape output is documented in OBSERVABILITY.md.
func TestObservabilityCataloguesEveryMetric(t *testing.T) {
	harness.E1(1)
	harness.E12(1)
	// The durable layer registers its cmtk_wal_* families in the default
	// registry (E13 runs with isolated per-arm registries).
	st, err := durable.Open(t.TempDir(), durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lg, _, err := st.Log("doc")
	if err != nil {
		t.Fatal(err)
	}
	lg.Append(1, []byte("x"))
	lg.Checkpoint([]byte("s"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The partitioned engine's worker and per-partition series
	// (cmtk_shell_workers, cmtk_shell_partition_depth, the partition
	// label on fire latency) only move on a parallel shell; run a small
	// one so the scrape covers them.
	psp, err := rule.ParseSpecString("site P\nprivate PA @ P\nprivate PB @ P\nrule pr: Ws(PA, b) ->5s W(PB, b)\n")
	if err != nil {
		t.Fatal(err)
	}
	psh := shell.New("docpar", psp, shell.Options{Clock: vclock.NewVirtual(vclock.Epoch), Workers: 2})
	psh.AddSite("P", nil)
	if err := psh.Start(); err != nil {
		t.Fatal(err)
	}
	psh.Spontaneous(data.Item("PA"), data.NewInt(0), data.NewInt(1))
	psh.Drain()
	psh.Stop()
	// The fleet layer's cmtk_fleet_* families only move on a sharded
	// deployment; run a tiny fleet through one post and one rebalance so
	// the router gauges, forward counters, and rebalance counters all
	// register in the default registry.
	fsp, err := rule.ParseSpecString("site F\nprivate FA @ F\nprivate FB @ F\nrule fr: Ws(FA, b) ->5s W(FB, b)\n")
	if err != nil {
		t.Fatal(err)
	}
	fl, err := fleet.New(fsp, fleet.Options{Members: []string{"doc1", "doc2"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	if err := fl.Post(data.Item("FA"), data.NewInt(0), data.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	fl.Drain()
	if err := fl.AddShell("doc3", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Rebalance([]string{"doc1", "doc2", "doc3"}); err != nil {
		t.Fatal(err)
	}
	fl.Stop()

	srv, err := server.ServeRel("127.0.0.1:0", relstore.New("doc"))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := server.DialRel(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cl.Exec("CREATE TABLE x (k TEXT, PRIMARY KEY (k))")
	cl.Close()
	srv.Close()

	var b strings.Builder
	if err := obs.Default.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	// Catalogue membership and naming delegate to the metricname
	// analyzer's shared extraction logic, so the live-scrape check and
	// the static cmlint check cannot drift apart.
	catalogued := metricname.Catalogue(doc)
	families := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		families++
		name := strings.Fields(line)[2]
		if !catalogued[name] {
			t.Errorf("metric %s is exposed but not catalogued in OBSERVABILITY.md", name)
		}
		if !metricname.NameRe.MatchString(name) {
			t.Errorf("metric %s violates the naming convention %s", name, metricname.NameRe)
		}
	}
	// The harness + server must have registered all four layers; a
	// collapse here means the test lost its coverage, not that docs are
	// fine.
	for _, want := range []string{"cmtk_shell_", "cmtk_translator_", "cmtk_transport_", "cmtk_ris_", "cmtk_wal_",
		"cmtk_shell_workers", "cmtk_shell_partition_depth",
		"cmtk_fleet_epoch", "cmtk_fleet_owned_bases", "cmtk_fleet_rebalances_total"} {
		if !strings.Contains(b.String(), "# TYPE "+want) &&
			!strings.Contains(b.String(), want) {
			t.Errorf("scrape covers no %s* metrics; catalogue test lost coverage", want)
		}
	}
	if families < 10 {
		t.Errorf("only %d families scraped; expected the full instrumented surface", families)
	}
}

// TestCatalogueCoversStaticRegistrations is the static mirror of the
// scrape test above: it extracts every metric registration literal in
// the tree with the metricname analyzer's own logic and asserts each is
// catalogued.  Code paths the scrape test never triggers (error
// counters, rare fault branches) are still held to the catalogue here.
func TestCatalogueCoversStaticRegistrations(t *testing.T) {
	root, _, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadTree(root, analysis.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	catalogued := metricname.Catalogue(doc)
	seen := 0
	for _, p := range pkgs {
		for _, m := range metricname.FromPackage(p) {
			seen++
			if !catalogued[m.Name] {
				t.Errorf("%s: metric %s is registered but not catalogued in OBSERVABILITY.md", m.Pos, m.Name)
			}
		}
	}
	if seen < 20 {
		t.Errorf("only %d registration sites extracted; the extractor lost coverage", seen)
	}
}
