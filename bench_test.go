// Benchmarks regenerating every scenario of the paper's evaluation — one
// benchmark per experiment in EXPERIMENTS.md.  Each iteration runs the
// full scenario (deployment, workload, trace validation, guarantee
// checks); the reported ns/op is the cost of reproducing the experiment,
// and failed shape assertions abort the run.
//
// Run with:
//
//	go test -bench=. -benchmem
package cmtk_test

import (
	"runtime"
	"strconv"
	"strings"
	"testing"

	"cmtk/internal/harness"
)

// requireShape fails the benchmark if a table reports violated guarantees
// where the paper claims they hold (rows whose guarantee columns are
// expected to fail are exempted by the experiments themselves).
func requireNoViolationMarks(b *testing.B, tbl harness.Table, exemptCols ...string) {
	b.Helper()
	exempt := map[int]bool{}
	for i, c := range tbl.Columns {
		for _, e := range exemptCols {
			if c == e {
				exempt[i] = true
			}
		}
	}
	for _, row := range tbl.Rows {
		for i, cell := range row {
			if exempt[i] {
				continue
			}
			if strings.Contains(cell, "FAILS") {
				b.Fatalf("%s: unexpected failure in column %q: %v", tbl.ID, tbl.Columns[i], row)
			}
		}
	}
}

func BenchmarkE1NotifyPropagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E1(60)
		requireNoViolationMarks(b, tbl)
	}
}

func BenchmarkE2Polling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// The leads column is expected to fail at long periods — that IS
		// the paper's claim.
		tbl := harness.E2(50)
		requireNoViolationMarks(b, tbl, "leads")
	}
}

func BenchmarkE3CachedPropagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E3(100)
		requireNoViolationMarks(b, tbl)
	}
}

func BenchmarkE4Demarcation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E4(100)
		requireNoViolationMarks(b, tbl)
	}
}

func BenchmarkE5Referential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E5(5)
		requireNoViolationMarks(b, tbl)
	}
}

func BenchmarkE6Monitor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E6(6)
		requireNoViolationMarks(b, tbl)
	}
}

func BenchmarkE7Periodic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// The daytime control is expected to fail: balances diverge
		// between batches during business hours.
		tbl := harness.E7(3)
		requireNoViolationMarks(b, tbl, "daytime control")
	}
}

func BenchmarkE8Failures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E8()
		if len(tbl.Rows) != 5 {
			b.Fatalf("E8 rows = %d", len(tbl.Rows))
		}
	}
}

func BenchmarkE9Retarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E9(40)
		requireNoViolationMarks(b, tbl)
	}
}

func BenchmarkF1Architecture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.F1(60)
		requireNoViolationMarks(b, tbl)
	}
}

func BenchmarkF2Pipeline(b *testing.B) {
	if testing.Short() {
		b.Skip("real-clock TCP experiment")
	}
	for i := 0; i < b.N; i++ {
		tbl := harness.F2(20)
		requireNoViolationMarks(b, tbl)
	}
}

func BenchmarkE10InOrderAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E10(16)
		// The scrambled row is expected to fail strict order — that is the
		// ablation's point.
		requireNoViolationMarks(b, tbl, "strict order")
	}
}

func BenchmarkE12ReliableDelivery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E12(3)
		if len(tbl.Rows) != 4 {
			b.Fatalf("E12 rows = %d", len(tbl.Rows))
		}
		// Raw links are expected to fail leads and end stale — that IS the
		// ablation; the reliable rows must be clean everywhere.
		for _, row := range tbl.Rows {
			if row[0] == "reliable" {
				for i, cell := range row {
					if strings.Contains(cell, "FAILS") {
						b.Fatalf("E12 reliable arm failed column %q: %v", tbl.Columns[i], row)
					}
				}
			}
		}
		requireNoViolationMarks(b, tbl, "leads", "final value correct")
	}
}

func BenchmarkE14EngineSaturation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E14(500)
		if len(tbl.Rows) != 10 {
			b.Fatalf("E14 rows = %d", len(tbl.Rows))
		}
		// Every arm — including the legacy clone+scan baseline — must still
		// record a valid trace: performance paths may not trade away the
		// Appendix A.2 properties.
		for _, row := range tbl.Rows {
			if row[len(row)-1] != "0 violations" {
				b.Fatalf("E14 arm recorded an invalid trace: %v", row)
			}
		}
	}
}

func BenchmarkE16CoreScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E16(500)
		if len(tbl.Rows) != 5 {
			b.Fatalf("E16 rows = %d", len(tbl.Rows))
		}
		// Parallelism may never trade away correctness: every arm —
		// serial baseline and every partitioned configuration — must
		// record an Appendix A.2-valid trace.
		for _, row := range tbl.Rows {
			if row[len(row)-1] != "0 violations" {
				b.Fatalf("E16 arm recorded an invalid trace: %v", row)
			}
		}
		// Scaling itself is only assertable when GOMAXPROCS arms are
		// backed by real cores; on single-core hosts (and cramped CI
		// shards) all arms collapse to serial throughput, so shape
		// checks would be noise.
		if runtime.NumCPU() >= 8 && !testing.Short() {
			speedup := func(procs string) float64 {
				for _, row := range tbl.Rows {
					if row[0] == procs && row[1] == "64" {
						v, err := strconv.ParseFloat(strings.TrimSuffix(cellOf(b, tbl, row, "speedup"), "x"), 64)
						if err != nil {
							b.Fatalf("E16 bad speedup cell: %v", row)
						}
						return v
					}
				}
				b.Fatalf("E16 missing procs=%s arm", procs)
				return 0
			}
			if s8 := speedup("8"); s8 < 1.5 {
				b.Fatalf("E16: 8-core arm speedup %.2fx on a %d-CPU host", s8, runtime.NumCPU())
			}
		}
	}
}

func BenchmarkE17FleetScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E17(500)
		if len(tbl.Rows) != 6 {
			b.Fatalf("E17 rows = %d", len(tbl.Rows))
		}
		// Sharding may never trade away correctness: every arm — the
		// 1-shell baseline, every static fleet width, and the arm that
		// rebalances mid-run — must record an Appendix A.2-valid trace.
		for _, row := range tbl.Rows {
			if row[len(row)-1] != "0 violations" {
				b.Fatalf("E17 arm recorded an invalid trace: %v", row)
			}
		}
		// The rebalance arm must actually have moved ownership, or the
		// sweep silently stopped exercising handoff.
		movedSomething := false
		for _, row := range tbl.Rows {
			if cellOf(b, tbl, row, "moved") != "0" {
				movedSomething = true
			}
		}
		if !movedSomething {
			b.Fatal("E17: no arm moved any bases; the live-rebalance arm is not exercising handoff")
		}
	}
}

func BenchmarkE11ClockSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E11(3)
		// The over-margin skew row is expected to fail.
		requireNoViolationMarks(b, tbl, "night guarantee")
		if len(tbl.Rows) != 3 {
			b.Fatalf("E11 rows = %d", len(tbl.Rows))
		}
	}
}

func BenchmarkE13CrashRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E13(3)
		if len(tbl.Rows) != 4 {
			b.Fatalf("E13 rows = %d", len(tbl.Rows))
		}
		// The in-memory arm is expected to lose its outbox with the process
		// and end stale — that IS the ablation; every durable arm must
		// replay its journal and come out clean everywhere.
		for _, row := range tbl.Rows {
			if row[0] != "durable" {
				continue
			}
			for i, cell := range row {
				if strings.Contains(cell, "FAILS") {
					b.Fatalf("E13 durable arm failed column %q: %v", tbl.Columns[i], row)
				}
			}
			if row[6] == "0" {
				b.Fatalf("E13 durable arm replayed nothing: %v", row)
			}
			if row[8] != "true" {
				b.Fatalf("E13 durable arm ended stale: %v", row)
			}
		}
		requireNoViolationMarks(b, tbl, "leads", "final value correct")
	}
}

func BenchmarkE15ChaosSoak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := harness.E15(40)
		if len(tbl.Rows) != 15 {
			b.Fatalf("E15 rows = %d", len(tbl.Rows))
		}
		// Every arm must converge losslessly with its logical guarantees
		// intact and zero true order violations — chaos may only cost
		// metric slack, never correctness.
		for _, row := range tbl.Rows {
			if lost := cellOf(b, tbl, row, "lost"); lost != "0" {
				b.Fatalf("E15 arm lost values: %v", row)
			}
			if fail := cellOf(b, tbl, row, "fail m/l"); !strings.HasSuffix(fail, "/0") {
				b.Fatalf("E15 arm saw logical failures: %v", row)
			}
			if p7 := cellOf(b, tbl, row, "prop-7"); !strings.HasSuffix(p7, "/0") {
				b.Fatalf("E15 arm truly reordered a link: %v", row)
			}
			if conv := cellOf(b, tbl, row, "converged"); conv != "true" {
				b.Fatalf("E15 arm did not converge: %v", row)
			}
		}
		requireNoViolationMarks(b, tbl)
	}
}

// cellOf fetches a named column from a row of tbl.
func cellOf(b *testing.B, tbl harness.Table, row []string, col string) string {
	b.Helper()
	for i, c := range tbl.Columns {
		if c == col {
			return row[i]
		}
	}
	b.Fatalf("%s: no column %q", tbl.ID, col)
	return ""
}
